exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)
(* ------------------------------------------------------------------ *)

type tok =
  | Id of string
  | Int of int
  | Float of float
  | LP
  | RP
  | Comma
  | Plus
  | Minus
  | Star
  | Slash
  | Colon
  | Assign
  | Le
  | Lt
  | Ge
  | Gt
  | EqEq

let tok_to_string = function
  | Id s -> s
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | LP -> "(" | RP -> ")" | Comma -> "," | Plus -> "+" | Minus -> "-"
  | Star -> "*" | Slash -> "/" | Colon -> ":" | Assign -> "="
  | Le -> "<=" | Lt -> "<" | Ge -> ">=" | Gt -> ">" | EqEq -> "=="

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_id_start c then begin
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do incr j done;
      toks := Id (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do incr j done;
      if
        !j < n && s.[!j] = '.'
        (* avoid swallowing ".." or field access; digits must follow *)
        && !j + 1 < n
        && is_digit s.[!j + 1]
      then begin
        incr j;
        while !j < n && is_digit s.[!j] do incr j done;
        (* exponent *)
        if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
          incr j;
          if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
          while !j < n && is_digit s.[!j] do incr j done
        end;
        toks := Float (float_of_string (String.sub s !i (!j - !i))) :: !toks
      end
      else toks := Int (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      let push t k = toks := t :: !toks; i := !i + k in
      match two with
      | "<=" -> push Le 2
      | ">=" -> push Ge 2
      | "==" -> push EqEq 2
      | _ -> begin
        match c with
        | '(' -> push LP 1
        | ')' -> push RP 1
        | ',' -> push Comma 1
        | '+' -> push Plus 1
        | '-' -> push Minus 1
        | '*' -> push Star 1
        | '/' -> push Slash 1
        | ':' -> push Colon 1
        | '=' -> push Assign 1
        | '<' -> push Lt 1
        | '>' -> push Gt 1
        | _ -> fail lineno (Printf.sprintf "unexpected character %c" c)
      end
    end
  done;
  List.rev !toks

(* A mutable cursor over one line's tokens. *)
type cursor = { mutable toks : tok list; line : int }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let next c =
  match c.toks with
  | [] -> fail c.line "unexpected end of line"
  | t :: tl ->
    c.toks <- tl;
    t

let expect c t =
  let got = next c in
  if got <> t then
    fail c.line
      (Printf.sprintf "expected %s, got %s" (tok_to_string t) (tok_to_string got))

let eat c t = match peek c with Some t' when t' = t -> ignore (next c); true | _ -> false

(* ------------------------------------------------------------------ *)
(* Integer (index/bound) expressions                                   *)
(* ------------------------------------------------------------------ *)

let rec iexpr c =
  let rec go acc =
    match peek c with
    | Some Plus ->
      ignore (next c);
      go (Expr.Add (acc, iterm c))
    | Some Minus ->
      ignore (next c);
      go (Expr.Sub (acc, iterm c))
    | _ -> acc
  in
  go (iterm c)

and iterm c =
  let as_const e =
    match Expr.simplify e with Expr.Const n -> Some n | _ -> None
  in
  let rec go acc =
    match peek c with
    | Some Star -> begin
      ignore (next c);
      let rhs = ifactor c in
      match (as_const acc, as_const rhs) with
      | Some k, Some j -> go (Expr.Const (k * j))
      | Some k, None -> go (Expr.Mul (k, rhs))
      | None, Some k -> go (Expr.Mul (k, acc))
      | None, None -> fail c.line "non-linear product"
    end
    | _ -> acc
  in
  go (ifactor c)

and ifactor c =
  match next c with
  | Int n -> Expr.Const n
  | Minus -> begin
    match ifactor c with
    | Expr.Const n -> Expr.Const (-n)
    | e -> Expr.Mul (-1, e)
  end
  | LP ->
    let e = iexpr c in
    expect c RP;
    e
  | Id ("min" | "max" as f) ->
    expect c LP;
    let args = ref [ iexpr c ] in
    while eat c Comma do
      args := iexpr c :: !args
    done;
    expect c RP;
    let args = List.rev !args in
    if f = "min" then Expr.min_list args else Expr.max_list args
  | Id ("floor" | "ceil" as f) ->
    expect c LP;
    let e = iexpr c in
    expect c Slash;
    let d = match next c with
      | Int d -> d
      | t -> fail c.line ("expected divisor, got " ^ tok_to_string t)
    in
    expect c RP;
    if f = "floor" then Expr.FloorDiv (e, d) else Expr.CeilDiv (e, d)
  | Id name -> Expr.Var name
  | t -> fail c.line ("unexpected token in index expression: " ^ tok_to_string t)

(* ------------------------------------------------------------------ *)
(* Float expressions                                                   *)
(* ------------------------------------------------------------------ *)

let parse_ref c name =
  expect c LP;
  let args = ref [ iexpr c ] in
  while eat c Comma do
    args := iexpr c :: !args
  done;
  expect c RP;
  Fexpr.ref_ name (List.rev !args)

let rec fexpr c =
  let rec go acc =
    match peek c with
    | Some Plus ->
      ignore (next c);
      go (Fexpr.Bin (Fexpr.Fadd, acc, fterm c))
    | Some Minus ->
      ignore (next c);
      go (Fexpr.Bin (Fexpr.Fsub, acc, fterm c))
    | _ -> acc
  in
  go (fterm c)

and fterm c =
  let rec go acc =
    match peek c with
    | Some Star ->
      ignore (next c);
      go (Fexpr.Bin (Fexpr.Fmul, acc, ffactor c))
    | Some Slash ->
      ignore (next c);
      go (Fexpr.Bin (Fexpr.Fdiv, acc, ffactor c))
    | _ -> acc
  in
  go (ffactor c)

and ffactor c =
  match next c with
  | Float x -> Fexpr.Const x
  | Int n -> Fexpr.Const (float_of_int n)
  | Minus -> Fexpr.Neg (ffactor c)
  | LP ->
    let e = fexpr c in
    expect c RP;
    e
  | Id "sqrt" ->
    expect c LP;
    let e = fexpr c in
    expect c RP;
    Fexpr.Sqrt e
  | Id name -> Fexpr.Ref (parse_ref c name)
  | t -> fail c.line ("unexpected token in expression: " ^ tok_to_string t)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let guard c =
  let lhs = iexpr c in
  let rel =
    match next c with
    | Le -> Ast.Le
    | Lt -> Ast.Lt
    | Ge -> Ast.Ge
    | Gt -> Ast.Gt
    | EqEq -> Ast.Eq
    | t -> fail c.line ("expected comparison, got " ^ tok_to_string t)
  in
  let rhs = iexpr c in
  Ast.guard lhs rel rhs

let guards c =
  let gs = ref [ guard c ] in
  let rec go () =
    match peek c with
    | Some (Id "and") ->
      ignore (next c);
      gs := guard c :: !gs;
      go ()
    | _ -> ()
  in
  go ();
  List.rev !gs

(* ------------------------------------------------------------------ *)
(* Lines and structure                                                 *)
(* ------------------------------------------------------------------ *)

type line =
  | Lheader of string * string list
  | Ldecl of Ast.array_decl
  | Ldo of string * Expr.t * Expr.t
  | Lend_do
  | Lif of Ast.guard list
  | Lend_if
  | Lstmt of string * Fexpr.ref_ * Fexpr.t

let classify lineno raw =
  let s = String.trim raw in
  if String.length s = 0 then None
  else if s.[0] = '!' then begin
    (* ! name (params: A, B) *)
    let body = String.trim (String.sub s 1 (String.length s - 1)) in
    match String.index_opt body '(' with
    | None -> Some (Lheader (body, []))
    | Some i ->
      let name = String.trim (String.sub body 0 i) in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      let rest =
        match String.index_opt rest ')' with
        | Some j -> String.sub rest 0 j
        | None -> fail lineno "unterminated header"
      in
      let params =
        match String.index_opt rest ':' with
        | None -> []
        | Some j ->
          String.sub rest (j + 1) (String.length rest - j - 1)
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun x -> x <> "")
      in
      Some (Lheader (name, params))
  end
  else begin
    let c = { toks = tokenize lineno s; line = lineno } in
    match next c with
    | Id "real" -> begin
      match next c with
      | Id name ->
        let r = parse_ref c name in
        Some (Ldecl { Ast.a_name = name; extents = r.Fexpr.idx })
      | t -> fail lineno ("expected array name, got " ^ tok_to_string t)
    end
    | Id "do" -> begin
      match next c with
      | Id var ->
        expect c Assign;
        let lo = iexpr c in
        expect c Comma;
        let hi = iexpr c in
        Some (Ldo (var, lo, hi))
      | t -> fail lineno ("expected loop variable, got " ^ tok_to_string t)
    end
    | Id "end" -> begin
      match next c with
      | Id "do" -> Some Lend_do
      | Id "if" -> Some Lend_if
      | t -> fail lineno ("expected do/if after end, got " ^ tok_to_string t)
    end
    | Id "if" ->
      expect c LP;
      let gs = guards c in
      expect c RP;
      (match next c with
       | Id "then" -> Some (Lif gs)
       | t -> fail lineno ("expected then, got " ^ tok_to_string t))
    | Id label -> begin
      match next c with
      | Colon -> begin
        match next c with
        | Id arr ->
          let lhs = parse_ref c arr in
          expect c Assign;
          let rhs = fexpr c in
          if c.toks <> [] then fail lineno "trailing tokens after statement";
          Some (Lstmt (label, lhs, rhs))
        | t -> fail lineno ("expected array reference, got " ^ tok_to_string t)
      end
      | t -> fail lineno ("expected ':', got " ^ tok_to_string t)
    end
    | t -> fail lineno ("unexpected line start: " ^ tok_to_string t)
  end

let program text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i raw -> (i + 1, raw))
    |> List.filter_map (fun (i, raw) ->
           Option.map (fun l -> (i, l)) (classify i raw))
  in
  let name = ref "program" and params = ref [] and arrays = ref [] in
  let sid = ref 0 in
  (* parse a block until one of the terminators; return (nodes, rest) *)
  let rec block lines terminators =
    match lines with
    | [] ->
      if terminators = [] then ([], [])
      else fail 0 "unexpected end of input (missing end do/end if)"
    | (lineno, l) :: rest -> begin
      match l with
      | Lend_do | Lend_if ->
        if List.mem l terminators then ([], lines)
        else fail lineno "mismatched end"
      | Lheader (n, ps) ->
        name := n;
        params := ps;
        block rest terminators
      | Ldecl d ->
        arrays := d :: !arrays;
        block rest terminators
      | Ldo (var, lo, hi) ->
        let body, rest = block rest [ Lend_do ] in
        let rest = match rest with _ :: r -> r | [] -> [] in
        let nodes, rest = block rest terminators in
        (Ast.Loop { Ast.var; lo; hi; body } :: nodes, rest)
      | Lif gs ->
        let body, rest = block rest [ Lend_if ] in
        let rest = match rest with _ :: r -> r | [] -> [] in
        let nodes, rest = block rest terminators in
        (Ast.If (gs, body) :: nodes, rest)
      | Lstmt (label, lhs, rhs) ->
        let id = !sid in
        incr sid;
        let nodes, rest = block rest terminators in
        (Ast.Stmt { Ast.id; label; lhs; rhs } :: nodes, rest)
    end
  in
  let body, rest = block lines [] in
  (match rest with
   | [] -> ()
   | (lineno, _) :: _ -> fail lineno "unbalanced end");
  { Ast.p_name = !name;
    params = !params;
    arrays = List.rev !arrays;
    body }

let roundtrip p = program (Ast.program_to_string p)
