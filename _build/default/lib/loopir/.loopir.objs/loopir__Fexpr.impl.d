lib/loopir/fexpr.ml: Expr Float Format List Stdlib String
