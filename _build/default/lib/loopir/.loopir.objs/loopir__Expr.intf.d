lib/loopir/expr.mli: Format Polyhedra
