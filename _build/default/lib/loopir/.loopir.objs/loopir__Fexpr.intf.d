lib/loopir/fexpr.mli: Expr Format
