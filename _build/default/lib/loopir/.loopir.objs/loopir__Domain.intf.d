lib/loopir/domain.mli: Ast Expr Fexpr Linalg Polyhedra
