lib/loopir/walk.ml: Ast Expr List
