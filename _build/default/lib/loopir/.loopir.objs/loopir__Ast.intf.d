lib/loopir/ast.mli: Expr Fexpr Format
