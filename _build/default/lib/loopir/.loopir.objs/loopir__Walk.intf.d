lib/loopir/walk.mli: Ast
