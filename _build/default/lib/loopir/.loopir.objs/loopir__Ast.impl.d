lib/loopir/ast.ml: Expr Fexpr Format List Option String
