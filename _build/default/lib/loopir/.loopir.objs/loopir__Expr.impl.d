lib/loopir/expr.ml: Array Bigint Format List Option Polyhedra Stdlib String
