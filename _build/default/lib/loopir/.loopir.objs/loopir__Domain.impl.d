lib/loopir/domain.ml: Array Ast Expr Fexpr List Polyhedra String
