lib/loopir/parser.ml: Ast Expr Fexpr List Option Printf String
