type rel = Le | Lt | Ge | Gt | Eq

type guard = { g_lhs : Expr.t; g_rel : rel; g_rhs : Expr.t }

type stmt = {
  id : int;
  label : string;
  lhs : Fexpr.ref_;
  rhs : Fexpr.t;
}

type t =
  | Loop of loop
  | If of guard list * t list
  | Stmt of stmt

and loop = { var : string; lo : Expr.t; hi : Expr.t; body : t list }

type array_decl = { a_name : string; extents : Expr.t list }

type program = {
  p_name : string;
  params : string list;
  arrays : array_decl list;
  body : t list;
}

let guard g_lhs g_rel g_rhs = { g_lhs; g_rel; g_rhs }
let loop var lo hi body = Loop { var; lo; hi; body }
let stmt ~id ~label lhs rhs = Stmt { id; label; lhs; rhs }

let eval_guard env g =
  let l = Expr.eval env g.g_lhs and r = Expr.eval env g.g_rhs in
  match g.g_rel with
  | Le -> l <= r
  | Lt -> l < r
  | Ge -> l >= r
  | Gt -> l > r
  | Eq -> l = r

type entry =
  | Eloop of loop
  | Eif of guard list

type context = {
  trail : (int * entry) list;
  stmt_index : int;
}

let loops_of ctx =
  List.filter_map
    (fun (_, e) -> match e with Eloop l -> Some l | Eif _ -> None)
    ctx.trail

let loop_vars ctx = List.map (fun (l : loop) -> l.var) (loops_of ctx)

let guards_of ctx =
  List.concat_map
    (fun (_, e) -> match e with Eif gs -> gs | Eloop _ -> [])
    ctx.trail

let statements prog =
  let acc = ref [] in
  let rec go trail idx node =
    match node with
    | Stmt s -> acc := ({ trail = List.rev trail; stmt_index = idx }, s) :: !acc
    | Loop l -> List.iteri (fun i n -> go ((idx, Eloop l) :: trail) i n) l.body
    | If (gs, body) ->
      List.iteri (fun i n -> go ((idx, Eif gs) :: trail) i n) body
  in
  List.iteri (fun i n -> go [] i n) prog.body;
  List.rev !acc

let find_stmt prog label =
  match
    List.find_opt (fun (_, s) -> String.equal s.label label) (statements prog)
  with
  | Some x -> x
  | None -> raise Not_found

let common_prefix c1 c2 =
  let rec go t1 t2 acc =
    match (t1, t2) with
    | (i1, e1) :: r1, (i2, _) :: r2 when i1 = i2 ->
      (* same sibling under the same parent: same node *)
      go r1 r2 (e1 :: acc)
    | (i1, _) :: _, (i2, _) :: _ -> (List.rev acc, (i1, i2))
    | (i1, _) :: _, [] -> (List.rev acc, (i1, c2.stmt_index))
    | [], (i2, _) :: _ -> (List.rev acc, (c1.stmt_index, i2))
    | [], [] -> (List.rev acc, (c1.stmt_index, c2.stmt_index))
  in
  go c1.trail c2.trail []

let arity_ok prog =
  let rank name =
    Option.map
      (fun (d : array_decl) -> List.length d.extents)
      (List.find_opt (fun d -> String.equal d.a_name name) prog.arrays)
  in
  let ref_ok (r : Fexpr.ref_) = rank r.array = Some (List.length r.idx) in
  List.for_all
    (fun (ctx, s) ->
      let vars = loop_vars ctx in
      List.length (List.sort_uniq String.compare vars) = List.length vars
      && ref_ok s.lhs
      && List.for_all ref_ok (Fexpr.reads s.rhs))
    (statements prog)

let max_stmt_id prog =
  List.fold_left (fun m (_, s) -> max m s.id) (-1) (statements prog)

let rec rename_loop_var node from into =
  let rn_expr e = Expr.subst_var e from (Expr.var into) in
  let rn_guard g = { g with g_lhs = rn_expr g.g_lhs; g_rhs = rn_expr g.g_rhs } in
  match node with
  | Stmt s ->
    Stmt
      { s with
        lhs = { s.lhs with idx = List.map rn_expr s.lhs.idx };
        rhs = Fexpr.subst_ref_var s.rhs from (Expr.var into) }
  | If (gs, body) ->
    If (List.map rn_guard gs, List.map (fun n -> rename_loop_var n from into) body)
  | Loop l ->
    (* Loop variable names are unique along any path (see [arity_ok]), so
       renaming the binder together with every occurrence is capture-free. *)
    Loop
      { var = (if String.equal l.var from then into else l.var);
        lo = rn_expr l.lo;
        hi = rn_expr l.hi;
        body = List.map (fun n -> rename_loop_var n from into) l.body }

let rec map_node fn = function
  | Stmt s -> Stmt (fn s)
  | If (gs, body) -> If (gs, List.map (map_node fn) body)
  | Loop l -> Loop { l with body = List.map (map_node fn) l.body }

let map_statements fn prog = { prog with body = List.map (map_node fn) prog.body }

let rel_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "=="

let pp_guard fmt g =
  Format.fprintf fmt "%a %s %a" Expr.pp g.g_lhs (rel_string g.g_rel) Expr.pp
    g.g_rhs

let rec pp fmt node =
  let open Format in
  match node with
  | Stmt s ->
    fprintf fmt "@[<h>%s: %a = %a@]" s.label Fexpr.pp_ref s.lhs Fexpr.pp s.rhs
  | If (gs, body) ->
    fprintf fmt "@[<v 2>if (%a) then@,%a@]@,end if"
      (pp_print_list
         ~pp_sep:(fun fmt () -> pp_print_string fmt " and ")
         pp_guard)
      gs pp_body body
  | Loop l ->
    fprintf fmt "@[<v 2>do %s = %a, %a@,%a@]@,end do" l.var Expr.pp l.lo
      Expr.pp l.hi pp_body l.body

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp fmt body

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>! %s (params: %s)@,%a%a@]" prog.p_name
    (String.concat ", " prog.params)
    (fun fmt arrays ->
      List.iter
        (fun d ->
          Format.fprintf fmt "real %s(%a)@," d.a_name
            (Format.pp_print_list
               ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
               Expr.pp)
            d.extents)
        arrays)
    prog.arrays pp_body prog.body

let program_to_string prog = Format.asprintf "%a@." pp_program prog
