module B = Bigint

type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of int * t
  | FloorDiv of t * int
  | CeilDiv of t * int
  | Max of t * t
  | Min of t * t

let var s = Var s
let int n = Const n
let max_ a b = Max (a, b)
let min_ a b = Min (a, b)

let max_list = function
  | [] -> invalid_arg "Expr.max_list: empty"
  | x :: tl -> List.fold_left max_ x tl

let min_list = function
  | [] -> invalid_arg "Expr.min_list: empty"
  | x :: tl -> List.fold_left min_ x tl

(* Floor division with positive divisor, correct for negative numerators. *)
let fdiv_int a d =
  if d <= 0 then raise Division_by_zero;
  let q = a / d and r = a mod d in
  if r < 0 then q - 1 else q

let cdiv_int a d = -fdiv_int (-a) d

let rec eval env = function
  | Var s -> env s
  | Const n -> n
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (k, a) -> k * eval env a
  | FloorDiv (a, d) -> fdiv_int (eval env a) d
  | CeilDiv (a, d) -> cdiv_int (eval env a) d
  | Max (a, b) -> Stdlib.max (eval env a) (eval env b)
  | Min (a, b) -> Stdlib.min (eval env a) (eval env b)

let rec simplify e =
  match e with
  | Var _ | Const _ -> e
  | Add (a, b) -> begin
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (x + y)
    | Const 0, b -> b
    | a, Const 0 -> a
    | Add (x, Const j), Const k ->
      if j + k = 0 then x else Add (x, Const (j + k))
    | Const j, b -> Add (b, Const j)
    | a, b -> Add (a, b)
  end
  | Sub (a, b) -> begin
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (x - y)
    | a, Const 0 -> a
    | a, Const k -> simplify (Add (a, Const (-k)))
    | a, b -> Sub (a, b)
  end
  | Mul (k, a) -> begin
    match (k, simplify a) with
    | 0, _ -> Const 0
    | 1, a -> a
    | k, Const x -> Const (k * x)
    | k, a -> Mul (k, a)
  end
  | FloorDiv (a, d) -> begin
    match (simplify a, d) with
    | a, 1 -> a
    | Const x, d -> Const (fdiv_int x d)
    | a, d -> FloorDiv (a, d)
  end
  | CeilDiv (a, d) -> begin
    match (simplify a, d) with
    | a, 1 -> a
    | Const x, d -> Const (cdiv_int x d)
    | a, d -> CeilDiv (a, d)
  end
  | Max (_, _) -> rebuild_extremum ~is_max:true e
  | Min (_, _) -> rebuild_extremum ~is_max:false e

(* Flatten nested min/max chains, simplify the arguments, deduplicate and
   fold constants together. *)
and rebuild_extremum ~is_max e =
  let rec args e =
    match (e, is_max) with
    | Max (a, b), true | Min (a, b), false -> args a @ args b
    | _ -> [ simplify e ]
  in
  let all = args e in
  let consts, rest =
    List.partition_map
      (function Const n -> Left n | e -> Right e)
      all
  in
  let rest =
    List.fold_left
      (fun acc e -> if List.mem e acc then acc else acc @ [ e ])
      [] rest
  in
  let folded =
    match consts with
    | [] -> rest
    | c :: cs ->
      let v = List.fold_left (if is_max then Stdlib.max else Stdlib.min) c cs in
      rest @ [ Const v ]
  in
  match folded with
  | [] -> assert false
  | hd :: tl ->
    List.fold_left (fun a b -> if is_max then Max (a, b) else Min (a, b)) hd tl

let to_affine ~lookup ~dim e =
  let module A = Polyhedra.Affine in
  let rec go = function
    | Var s -> Option.map (A.var dim) (lookup s)
    | Const n -> Some (A.of_int dim n)
    | Add (a, b) -> combine A.add a b
    | Sub (a, b) -> combine A.sub a b
    | Mul (k, a) -> Option.map (A.scale_int k) (go a)
    | FloorDiv _ | CeilDiv _ | Max _ | Min _ -> None
  and combine f a b =
    match (go a, go b) with Some x, Some y -> Some (f x y) | _ -> None
  in
  go e

let of_affine ~names aff =
  let module A = Polyhedra.Affine in
  let acc = ref [] in
  for i = 0 to A.dim aff - 1 do
    let c = A.coeff aff i in
    if not (B.is_zero c) then
      acc := Mul (B.to_int_exn c, Var names.(i)) :: !acc
  done;
  let const = B.to_int_exn (A.const_of aff) in
  let terms = List.rev !acc in
  let base =
    match terms with
    | [] -> Const const
    | hd :: tl ->
      let sum = List.fold_left (fun a t -> Add (a, t)) hd tl in
      if const = 0 then sum else Add (sum, Const const)
  in
  simplify base

let rec vars = function
  | Var s -> [ s ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Max (a, b) | Min (a, b) ->
    List.append (vars a) (vars b)
  | Mul (_, a) | FloorDiv (a, _) | CeilDiv (a, _) -> vars a

let rec subst_var e name by =
  let go e = subst_var e name by in
  match e with
  | Var s -> if String.equal s name then by else e
  | Const _ -> e
  | Add (a, b) -> Add (go a, go b)
  | Sub (a, b) -> Sub (go a, go b)
  | Mul (k, a) -> Mul (k, go a)
  | FloorDiv (a, d) -> FloorDiv (go a, d)
  | CeilDiv (a, d) -> CeilDiv (go a, d)
  | Max (a, b) -> Max (go a, go b)
  | Min (a, b) -> Min (go a, go b)

let equal a b = a = b

(* Precedence-aware printing: sums at level 0, products at level 1. *)
let rec pp_prec prec fmt e =
  let open Format in
  match e with
  | Var s -> pp_print_string fmt s
  | Const n -> if n < 0 && prec > 0 then fprintf fmt "(%d)" n else pp_print_int fmt n
  | Add (a, Const n) when n < 0 ->
    if prec > 0 then fprintf fmt "(%a - %d)" (pp_prec 0) a (-n)
    else fprintf fmt "%a - %d" (pp_prec 0) a (-n)
  | Add (a, b) ->
    if prec > 0 then fprintf fmt "(%a + %a)" (pp_prec 0) a (pp_prec 0) b
    else fprintf fmt "%a + %a" (pp_prec 0) a (pp_prec 0) b
  | Sub (a, b) ->
    if prec > 0 then fprintf fmt "(%a - %a)" (pp_prec 0) a (pp_prec 1) b
    else fprintf fmt "%a - %a" (pp_prec 0) a (pp_prec 1) b
  | Mul (k, a) -> fprintf fmt "%d*%a" k (pp_prec 1) a
  | FloorDiv (a, d) -> fprintf fmt "floor((%a)/%d)" (pp_prec 0) a d
  | CeilDiv (a, d) -> fprintf fmt "ceil((%a)/%d)" (pp_prec 0) a d
  | Max (_, _) | Min (_, _) ->
    let is_max = match e with Max _ -> true | _ -> false in
    let rec args e =
      match (e, is_max) with
      | Max (a, b), true | Min (a, b), false -> args a @ args b
      | _ -> [ e ]
    in
    fprintf fmt "%s(%a)"
      (if is_max then "max" else "min")
      (pp_print_list
         ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
         (pp_prec 0))
      (args e)

let pp fmt e = pp_prec 0 fmt e
let to_string e = Format.asprintf "%a" pp e

(* Operator aliases come last so the whole module body keeps native integer
   arithmetic. *)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) k a = Mul (k, a)
