module A = Polyhedra.Affine
module C = Polyhedra.Constr

exception Not_affine of string

type space = { names : string array; param_count : int }

let space_of (prog : Ast.program) ctx =
  { names = Array.of_list (prog.params @ Ast.loop_vars ctx);
    param_count = List.length prog.params }

let depth sp = Array.length sp.names - sp.param_count

let var_index sp name =
  let rec go i =
    if i >= Array.length sp.names then raise Not_found
    else if String.equal sp.names.(i) name then i
    else go (i + 1)
  in
  go 0

let to_affine sp e =
  let dim = Array.length sp.names in
  let lookup n = match var_index sp n with i -> Some i | exception Not_found -> None in
  match Expr.to_affine ~lookup ~dim e with
  | Some a -> a
  | None -> raise (Not_affine (Expr.to_string e))

(* [lo <= v] where lo may be a max of affine pieces; dually for uppers. *)
let rec lower_pieces = function
  | Expr.Max (a, b) -> lower_pieces a @ lower_pieces b
  | e -> [ e ]

let rec upper_pieces = function
  | Expr.Min (a, b) -> upper_pieces a @ upper_pieces b
  | e -> [ e ]

let bound_constraints sp var ~lo ~hi =
  let v = A.var (Array.length sp.names) (var_index sp var) in
  List.map (fun e -> C.ge_of v (to_affine sp e)) (lower_pieces lo)
  @ List.map (fun e -> C.le_of v (to_affine sp e)) (upper_pieces hi)

let guard_constraint sp (g : Ast.guard) =
  let l = to_affine sp g.g_lhs and r = to_affine sp g.g_rhs in
  match g.g_rel with
  | Ast.Le -> [ C.le_of l r ]
  | Ast.Lt -> [ C.lt_of l r ]
  | Ast.Ge -> [ C.ge_of l r ]
  | Ast.Gt -> [ C.gt_of l r ]
  | Ast.Eq -> [ C.eq_of l r ]

let guard_constraints sp gs = List.concat_map (guard_constraint sp) gs

let domain_of prog ctx =
  let sp = space_of prog ctx in
  let cs =
    List.concat_map
      (fun (_, entry) ->
        match entry with
        | Ast.Eloop l -> bound_constraints sp l.var ~lo:l.lo ~hi:l.hi
        | Ast.Eif gs -> guard_constraints sp gs)
      ctx.Ast.trail
  in
  Polyhedra.System.make sp.names cs

let access sp (r : Fexpr.ref_) = List.map (to_affine sp) r.idx

let access_matrix prog ctx r =
  let sp = space_of prog ctx in
  let rows = access sp r in
  Array.of_list
    (List.map
       (fun a ->
         Array.init (depth sp) (fun j -> A.coeff a (sp.param_count + j)))
       rows)
