type ref_ = { array : string; idx : Expr.t list }

type binop = Fadd | Fsub | Fmul | Fdiv

type t =
  | Ref of ref_
  | Const of float
  | Neg of t
  | Bin of binop * t * t
  | Sqrt of t

let ref_ array idx = { array; idx }
let read array idx = Ref { array; idx }
let f x = Const x
let ( + ) a b = Bin (Fadd, a, b)
let ( - ) a b = Bin (Fsub, a, b)
let ( * ) a b = Bin (Fmul, a, b)
let ( / ) a b = Bin (Fdiv, a, b)
let sqrt_ a = Sqrt a
let neg a = Neg a

let rec reads = function
  | Ref r -> [ r ]
  | Const _ -> []
  | Neg a | Sqrt a -> reads a
  | Bin (_, a, b) -> List.append (reads a) (reads b)

let rec map_ref_indices fn = function
  | Ref r -> Ref { r with idx = List.map fn r.idx }
  | Const _ as e -> e
  | Neg a -> Neg (map_ref_indices fn a)
  | Sqrt a -> Sqrt (map_ref_indices fn a)
  | Bin (op, a, b) -> Bin (op, map_ref_indices fn a, map_ref_indices fn b)

let subst_ref_var e name by =
  map_ref_indices (fun ix -> Expr.subst_var ix name by) e

let pp_ref fmt r =
  Format.fprintf fmt "%s(%a)" r.array
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Expr.pp)
    r.idx

let op_string = function Fadd -> "+" | Fsub -> "-" | Fmul -> "*" | Fdiv -> "/"

let rec pp_prec prec fmt e =
  let open Format in
  match e with
  | Ref r -> pp_ref fmt r
  | Const x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      fprintf fmt "%.1f" x
    else fprintf fmt "%g" x
  | Neg a -> fprintf fmt "-%a" (pp_prec 2) a
  | Sqrt a -> fprintf fmt "sqrt(%a)" (pp_prec 0) a
  | Bin (op, a, b) ->
    let this = match op with Fadd | Fsub -> 0 | Fmul | Fdiv -> 1 in
    let right_prec = Stdlib.( + ) this 1 in
    if prec > this then
      fprintf fmt "(%a %s %a)" (pp_prec this) a (op_string op)
        (pp_prec right_prec) b
    else
      fprintf fmt "%a %s %a" (pp_prec this) a (op_string op)
        (pp_prec right_prec) b

let pp fmt e = pp_prec 0 fmt e

let ref_equal a b =
  String.equal a.array b.array
  && List.length a.idx = List.length b.idx
  && List.for_all2 Expr.equal a.idx b.idx
