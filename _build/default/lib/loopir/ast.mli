(** The loop-nest IR: imperfectly nested loops with affine bounds, affine
    guards, and assignment statements.  This is the program class of the
    paper (Fortran-style dense linear algebra kernels), plus the min/max and
    floor/ceil bound forms that blocked code needs. *)

type rel = Le | Lt | Ge | Gt | Eq

type guard = { g_lhs : Expr.t; g_rel : rel; g_rhs : Expr.t }

type stmt = {
  id : int;       (** unique within a program *)
  label : string; (** e.g. "S1" *)
  lhs : Fexpr.ref_;
  rhs : Fexpr.t;
}

type t =
  | Loop of loop
  | If of guard list * t list  (** conjunction of guards *)
  | Stmt of stmt

and loop = { var : string; lo : Expr.t; hi : Expr.t; body : t list }

type array_decl = { a_name : string; extents : Expr.t list }

type program = {
  p_name : string;
  params : string list;
  arrays : array_decl list;
  body : t list;
}

val guard : Expr.t -> rel -> Expr.t -> guard
val loop : string -> Expr.t -> Expr.t -> t list -> t
val stmt : id:int -> label:string -> Fexpr.ref_ -> Fexpr.t -> t
val eval_guard : (string -> int) -> guard -> bool

(** {2 Contexts and traversal} *)

type entry =
  | Eloop of loop
  | Eif of guard list

type context = {
  trail : (int * entry) list;
      (** outermost first; [(sibling_index, node)] for each enclosing node *)
  stmt_index : int;  (** sibling index of the statement itself *)
}

val loops_of : context -> loop list
(** Enclosing loops, outermost first. *)

val loop_vars : context -> string list
val guards_of : context -> guard list

val statements : program -> (context * stmt) list
(** All statements in textual order with their contexts. *)

val find_stmt : program -> string -> context * stmt
(** Lookup by label. @raise Not_found *)

val common_prefix : context -> context -> entry list * (int * int)
(** Shared enclosing nodes of two statements and the sibling indices at the
    divergence point (used for textual-order comparison); the statement's own
    index serves when one trail is a prefix of the other. *)

val arity_ok : program -> bool
(** Every reference matches its array's declared rank, and every loop
    variable is fresh along its path. *)

val max_stmt_id : program -> int
val rename_loop_var : t -> string -> string -> t
(** Capture-naive renaming, used by code generation on fresh names. *)

val map_statements : (stmt -> stmt) -> program -> program

val pp_guard : Format.formatter -> guard -> unit
val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
