(** Floating-point expressions: the right-hand sides of statements.
    Array references carry integer index expressions. *)

type ref_ = { array : string; idx : Expr.t list }

type binop = Fadd | Fsub | Fmul | Fdiv

type t =
  | Ref of ref_
  | Const of float
  | Neg of t
  | Bin of binop * t * t
  | Sqrt of t

val ref_ : string -> Expr.t list -> ref_
val read : string -> Expr.t list -> t
val f : float -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val sqrt_ : t -> t
val neg : t -> t

val reads : t -> ref_ list
(** All array references, left to right. *)

val map_ref_indices : (Expr.t -> Expr.t) -> t -> t
val subst_ref_var : t -> string -> Expr.t -> t
val pp_ref : Format.formatter -> ref_ -> unit
val pp : Format.formatter -> t -> unit
val ref_equal : ref_ -> ref_ -> bool
