lib/dependence/dep.mli: Format Loopir Polyhedra
