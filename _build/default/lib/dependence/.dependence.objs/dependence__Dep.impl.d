lib/dependence/dep.ml: Array Bigint Format List Loopir Polyhedra String
