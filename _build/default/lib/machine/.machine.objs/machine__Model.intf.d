lib/machine/model.mli: Cache Exec Format Loopir
