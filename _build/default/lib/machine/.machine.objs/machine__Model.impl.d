lib/machine/model.ml: Cache Exec Format List
