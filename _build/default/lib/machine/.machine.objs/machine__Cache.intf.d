lib/machine/cache.mli:
