type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;
  mem_cycles : float;
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

let sp2_like =
  { m_name = "sp2-like";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 64 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 50.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

(* Geometry scaled down so the locality effects show at simulation-friendly
   problem sizes; the L1:L2:memory cost ratios are what matter. *)
let two_level =
  { m_name = "two-level";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 16 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 };
        { l_name = "L2";
          l_cache =
            { Cache.size_bytes = 256 * 1024; line_bytes = 128; assoc = 8 };
          l_hit_cycles = 8.0 } ];
    mem_cycles = 60.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

let untuned = { q_name = "untuned"; overhead = 2.0; forwarding = false }
let tuned = { q_name = "tuned"; overhead = 0.25; forwarding = true }

type level_stat = { s_name : string; s_accesses : int; s_misses : int }

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

let simulate ?layouts ~machine ~quality prog ~params ~init =
  let caches =
    List.map (fun l -> (l, Cache.create l.l_cache)) machine.levels
  in
  let mem_cycles = ref 0.0 in
  let accesses = ref 0 in
  let instances = ref 0 in
  let last_addr = ref min_int in
  let trace ~write ~addr =
    if write then incr instances;
    if quality.forwarding && addr = !last_addr then ()
    else begin
      incr accesses;
      last_addr := addr;
      let byte = addr * machine.elem_bytes in
      let rec probe = function
        | [] -> mem_cycles := !mem_cycles +. machine.mem_cycles
        | (spec, cache) :: rest ->
          if Cache.access cache byte then
            mem_cycles := !mem_cycles +. spec.l_hit_cycles
          else probe rest
      in
      probe caches
    end
  in
  let _, flops = Exec.Verify.run_program ?layouts ~trace prog ~params ~init in
  let cycles =
    (float_of_int flops *. machine.flop_cycles)
    +. !mem_cycles
    +. (quality.overhead *. float_of_int !instances)
  in
  let seconds = cycles /. (machine.clock_mhz *. 1e6) in
  { r_flops = flops;
    r_instances = !instances;
    r_accesses = !accesses;
    r_levels =
      List.map
        (fun (spec, cache) ->
          { s_name = spec.l_name;
            s_accesses = Cache.accesses cache;
            s_misses = Cache.misses cache })
        caches;
    r_cycles = cycles;
    r_mflops = (if cycles = 0.0 then 0.0 else float_of_int flops /. 1e6 /. seconds) }

let pp_result fmt r =
  Format.fprintf fmt "flops=%d insts=%d accesses=%d cycles=%.0f mflops=%.1f"
    r.r_flops r.r_instances r.r_accesses r.r_cycles r.r_mflops;
  List.iter
    (fun s ->
      Format.fprintf fmt " %s[acc=%d miss=%d]" s.s_name s.s_accesses s.s_misses)
    r.r_levels
