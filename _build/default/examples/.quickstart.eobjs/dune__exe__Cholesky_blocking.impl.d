examples/cholesky_blocking.ml: Codegen Exec Experiments Format Kernels List Loopir Machine Printf Shackle String
