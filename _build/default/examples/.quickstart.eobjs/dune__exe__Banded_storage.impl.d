examples/banded_storage.ml: Array Codegen Exec Experiments Format Kernels List Loopir Machine Shackle
