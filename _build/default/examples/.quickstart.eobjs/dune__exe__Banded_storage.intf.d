examples/banded_storage.mli:
