examples/quickstart.ml: Codegen Exec Format Kernels Loopir Machine Printf Shackle
