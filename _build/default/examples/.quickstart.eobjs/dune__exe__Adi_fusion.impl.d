examples/adi_fusion.ml: Codegen Exec Experiments Format Kernels Loopir Machine Printf Shackle
