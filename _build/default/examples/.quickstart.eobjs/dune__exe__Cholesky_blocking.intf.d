examples/cholesky_blocking.mli:
