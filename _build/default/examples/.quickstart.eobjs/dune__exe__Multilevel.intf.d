examples/multilevel.mli:
