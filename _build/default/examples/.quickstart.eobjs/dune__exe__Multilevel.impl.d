examples/multilevel.ml: Codegen Exec Experiments Format Kernels List Loopir Machine Printf Shackle
