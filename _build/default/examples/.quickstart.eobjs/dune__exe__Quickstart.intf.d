examples/quickstart.mli:
