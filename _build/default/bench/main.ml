(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) plus the code-shape figures from the body of the
   paper, then times the compiler passes and one representative simulation
   point per figure with Bechamel.

   Usage:  dune exec bench/main.exe            (full tables + micro timings)
           dune exec bench/main.exe -- --quick (smaller problem sizes)      *)

module F = Experiments.Figures
module K = Kernels.Builders
module Model = Machine.Model
module Tighten = Codegen.Tighten

let quick = Array.exists (String.equal "--quick") Sys.argv

let section title = Printf.printf "\n================ %s ================\n" title

let show_code title code =
  section title;
  print_string code

let show_figure fig = Format.printf "%a" F.pp_figure fig

let code_figures () =
  show_code "Figure 3: blocked matmul (C x A product, 25x25)" (F.fig3_code ());
  show_code "Figure 5: naive C-shackled matmul" (F.fig5_code ());
  show_code "Figure 6: simplified C-shackled matmul" (F.fig6_code ());
  show_code "Figure 7: shackled right-looking Cholesky (64x64)" (F.fig7_code ());
  show_code "Figure 10: two-level blocked matmul (64 then 8)" (F.fig10_code ());
  let before, after = F.fig14_code () in
  show_code "Figure 14(i): ADI input code" before;
  show_code "Figure 14(ii): ADI after the 1x1 storage-order shackle" after

let perf_figures () =
  section "Performance figures (simulated SP-2 stand-in; see DESIGN.md)";
  let fig11 =
    if quick then F.fig11_cholesky ~sizes:[ 48; 96 ] ()
    else F.fig11_cholesky ()
  in
  show_figure fig11;
  let fig12 =
    if quick then F.fig12_qr ~sizes:[ 40; 80 ] () else F.fig12_qr ()
  in
  show_figure fig12;
  show_figure (F.fig13_gmtry ~n:(if quick then 96 else 192) ());
  show_figure (F.fig13_adi ~n:(if quick then 300 else 1000) ());
  let fig15 =
    if quick then F.fig15_band ~n:200 ~bands:[ 8; 32 ] () else F.fig15_band ()
  in
  show_figure fig15;
  show_figure (F.tab_legality ());
  show_figure (F.abl_blocksize ~n:(if quick then 96 else 192) ());
  show_figure (F.abl_tiling ~n:(if quick then 96 else 144) ());
  show_figure (F.abl_multilevel ~n:(if quick then 120 else 250) ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let stage name fn = Test.make ~name (Staged.stage fn)

let bench_tests () =
  let sim ?(machine = Model.sp2_like) prog ~n ~kernel ~quality ?(params = []) () =
    ignore
      (Model.simulate ~machine ~quality prog
         ~params:(("N", n) :: params)
         ~init:(Kernels.Inits.for_kernel kernel ~n))
  in
  let matmul = K.matmul () in
  let cholesky = K.cholesky_right () in
  let cholesky_blocked =
    Tighten.generate cholesky (Experiments.Specs.cholesky_fully_blocked ~size:16)
  in
  let qr = K.qr () in
  let qr_blocked = Tighten.generate qr (Experiments.Specs.qr_columns ~width:8) in
  let gmtry_blocked =
    Tighten.generate (K.gmtry ()) (Experiments.Specs.gmtry_write ~size:16)
  in
  let adi_fused = Tighten.generate (K.adi ()) (Experiments.Specs.adi_fused ()) in
  let banded = K.cholesky_banded () in
  let banded_blocked =
    Tighten.generate banded (Experiments.Specs.cholesky_banded_write ~size:16)
  in
  [ stage "fig3_codegen" (fun () ->
        Tighten.generate matmul (Experiments.Specs.matmul_ca ~size:25));
    stage "fig6_codegen" (fun () ->
        Tighten.generate matmul (Experiments.Specs.matmul_c ~size:25));
    stage "fig7_codegen" (fun () ->
        Tighten.generate cholesky (Experiments.Specs.cholesky_write ~size:64));
    stage "fig10_codegen" (fun () ->
        Tighten.generate matmul
          (Experiments.Specs.matmul_two_level ~outer:64 ~inner:8));
    stage "fig14_codegen" (fun () ->
        Tighten.generate (K.adi ()) (Experiments.Specs.adi_fused ()));
    stage "fig11_sim_point" (fun () ->
        sim cholesky_blocked ~n:48 ~kernel:"cholesky_right"
          ~quality:Model.untuned ());
    stage "fig12_sim_point" (fun () ->
        sim qr_blocked ~n:32 ~kernel:"qr" ~quality:Model.untuned ());
    stage "fig13i_sim_point" (fun () ->
        sim gmtry_blocked ~n:48 ~kernel:"gmtry" ~quality:Model.untuned ());
    stage "fig13ii_sim_point" (fun () ->
        sim adi_fused ~n:100 ~kernel:"adi" ~quality:Model.untuned ());
    stage "fig15_sim_point" (fun () ->
        sim banded_blocked ~n:100 ~kernel:"cholesky_banded"
          ~quality:Model.untuned ~params:[ ("BW", 8) ] ());
    stage "tab_legality_check" (fun () ->
        Shackle.Legality.is_legal cholesky
          (Experiments.Specs.cholesky_write ~size:16));
    stage "abl_tiling_point" (fun () ->
        sim (Tiling.cholesky_update_tiled ~size:16) ~n:48
          ~kernel:"cholesky_right" ~quality:Model.untuned ());
    stage "abl_multilevel_point" (fun () ->
        sim ~machine:Model.two_level
          (Tighten.generate matmul
             (Experiments.Specs.matmul_two_level ~outer:32 ~inner:8))
          ~n:64 ~kernel:"matmul" ~quality:Model.untuned ()) ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (wall-clock per run)";
  let tests = Test.make_grouped ~name:"paper" ~fmt:"%s %s" (bench_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* print name -> estimated ns/run *)
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
            | _ -> Printf.printf "%-40s %12s\n" name "n/a")
          tbl)
    results

let () =
  code_figures ();
  perf_figures ();
  run_bechamel ();
  print_newline ()
