(* Tests for the Section 8 extensions: reversed block traversals (the
   triangular back-solve example), non-axis-aligned cutting planes
   (Section 6.2: orientation matters for legality, not performance), and a
   randomized static-vs-dynamic legality property. *)

module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr
module K = Kernels.Builders
module Blocking = Shackle.Blocking
module Spec = Shackle.Spec
module Legality = Shackle.Legality
module Tighten = Codegen.Tighten

let v = E.var

(* U upper triangular with a dominant diagonal; B and X dense vectors. *)
let trisolve_init n name idx =
  match name with
  | "U" ->
    let i = idx.(0) and j = idx.(1) in
    if i > j then 0.0
    else if i = j then 2.0 +. float_of_int n
    else 1.0 /. float_of_int (1 + j - i)
  | _ -> Kernels.Inits.generic name idx

let col_j = E.Add (E.Sub (v "N", v "jj"), E.Const 1)

let trisolve_choices =
  [ ("S1", Fexpr.ref_ "U" [ col_j; col_j ]);
    ("S2", Fexpr.ref_ "U" [ v "i"; col_j ]) ]

let forward_blocking width =
  Blocking.make ~array:"U" ~rank:2
    [ { Blocking.normal = [ 0; 1 ]; width; offset = 1 } ]

let reversed_blocking width =
  Blocking.make ~array:"U" ~rank:2
    [ { Blocking.normal = [ 0; -1 ]; width; offset = 1 } ]

let test_trisolve_forward_illegal () =
  let p = K.trisolve_backward () in
  let spec = [ Spec.factor (forward_blocking 4) trisolve_choices ] in
  Alcotest.(check bool) "left-to-right blocks illegal" false
    (Legality.is_legal p spec)

let test_trisolve_reversed_legal () =
  let p = K.trisolve_backward () in
  let spec = [ Spec.factor (reversed_blocking 4) trisolve_choices ] in
  Alcotest.(check bool) "right-to-left blocks legal" true
    (Legality.is_legal p spec)

let test_trisolve_dynamic_cross_check () =
  let p = K.trisolve_backward () in
  let n = 23 in
  let check blocking expect_ok =
    let spec = [ Spec.factor blocking trisolve_choices ] in
    let g = Tighten.generate p spec in
    let diff =
      Exec.Verify.max_diff p g ~params:[ ("N", n) ] ~init:(trisolve_init n)
    in
    Alcotest.(check bool)
      (if expect_ok then "reversed computes the right solution"
       else "forward computes a wrong solution")
      expect_ok (diff <= 1e-9)
  in
  check (reversed_blocking 4) true;
  check (forward_blocking 4) false

let test_trisolve_solution_property () =
  (* the computed X actually solves U x = b *)
  let p = K.trisolve_backward () in
  let n = 17 in
  let init = trisolve_init n in
  let spec = [ Spec.factor (reversed_blocking 5) trisolve_choices ] in
  let g = Tighten.generate p spec in
  let store, _ = Exec.Verify.run_program g ~params:[ ("N", n) ] ~init in
  for i = 1 to n do
    let dot = ref 0.0 in
    for j = i to n do
      dot := !dot +. (init "U" [| i; j |] *. Exec.Store.get store "X" [| j |])
    done;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "(Ux)(%d) = b(%d)" i i)
      (init "B" [| i |])
      !dot
  done

(* --- cutting-plane orientation (Section 6.2) --- *)

let skewed_blocking size =
  (* anti-diagonal planes crossed with column planes: same block volume as
     the axis-aligned blocking, different orientation *)
  Blocking.make ~array:"C" ~rank:2
    [ { Blocking.normal = [ 1; 1 ]; width = size; offset = 2 };
      { Blocking.normal = [ 0; 1 ]; width = size; offset = 1 } ]

let test_skewed_matmul_legal_and_correct () =
  let p = K.matmul () in
  let spec =
    [ Spec.factor (skewed_blocking 16)
        [ ("S1", Fexpr.ref_ "C" [ v "I"; v "J" ]) ] ]
  in
  Alcotest.(check bool) "skewed blocking legal" true (Legality.is_legal p spec);
  let g = Tighten.generate p spec in
  let init = Kernels.Inits.for_kernel "matmul" ~n:21 in
  Alcotest.(check bool) "equivalent" true
    (Exec.Verify.equivalent p g ~params:[ ("N", 21) ] ~init)

let test_orientation_volume_comparable () =
  (* Section 6.2: "to a first order of approximation, the orientation of
     the cutting planes is irrelevant as far as performance is concerned,
     provided the blocks have the same volume". *)
  let n = 96 in
  let p = K.matmul () in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let sim spec =
    let g = Tighten.generate p spec in
    Machine.Model.simulate ~machine:Machine.Model.sp2_like
      ~quality:Machine.Model.untuned g ~params:[ ("N", n) ] ~init
  in
  let axis =
    sim
      [ Spec.factor
          (Blocking.blocks_2d ~array:"C" ~size:16)
          [ ("S1", Fexpr.ref_ "C" [ v "I"; v "J" ]) ] ]
  in
  let skew =
    sim
      [ Spec.factor (skewed_blocking 16)
          [ ("S1", Fexpr.ref_ "C" [ v "I"; v "J" ]) ] ]
  in
  let misses r = (List.hd r.Machine.Model.r_levels).Machine.Model.s_misses in
  Alcotest.(check bool) "same flops" true
    (axis.Machine.Model.r_flops = skew.Machine.Model.r_flops);
  (* within 2x of each other *)
  Alcotest.(check bool) "comparable misses" true
    (misses skew < 2 * misses axis && misses axis < 2 * misses skew)

(* --- randomized static-vs-dynamic legality --- *)

let prop_legality_matches_dynamics =
  let cases =
    [ ([ "I"; "J" ], [ "L"; "K" ]); ([ "I"; "J" ], [ "L"; "J" ]);
      ([ "I"; "J" ], [ "K"; "J" ]); ([ "J"; "J" ], [ "L"; "K" ]);
      ([ "J"; "J" ], [ "L"; "J" ]); ([ "J"; "J" ], [ "K"; "J" ]) ]
  in
  QCheck.Test.make ~count:12
    ~name:"cholesky: static legality = dynamic correctness"
    QCheck.(pair (int_range 0 5) (pair (int_range 2 9) (int_range 11 25)))
    (fun (case, (block, n)) ->
      let s2, s3 = List.nth cases case in
      let rf a idx = Fexpr.ref_ a (List.map v idx) in
      let p = K.cholesky_right () in
      let spec =
        [ Spec.factor
            (Blocking.blocks_2d ~array:"A" ~size:block)
            [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" s2);
              ("S3", rf "A" s3) ] ]
      in
      let static = Legality.is_legal p spec in
      let g = Tighten.generate p spec in
      let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
      let diff = Exec.Verify.max_diff p g ~params:[ ("N", n) ] ~init in
      (* a "legal" shackle must compute the right answer; an illegal one is
         allowed to be accidentally right (e.g. when blocks are so large
         nothing is reordered), so only test the forward implication *)
      (not static) || diff <= 1e-9)

let () =
  Alcotest.run "extensions"
    [ ( "trisolve (reversed traversal)",
        [ Alcotest.test_case "forward illegal" `Quick
            test_trisolve_forward_illegal;
          Alcotest.test_case "reversed legal" `Quick
            test_trisolve_reversed_legal;
          Alcotest.test_case "dynamic cross-check" `Quick
            test_trisolve_dynamic_cross_check;
          Alcotest.test_case "solves the system" `Quick
            test_trisolve_solution_property ] );
      ( "orientation",
        [ Alcotest.test_case "skewed planes legal+correct" `Quick
            test_skewed_matmul_legal_and_correct;
          Alcotest.test_case "volume comparable" `Slow
            test_orientation_volume_comparable ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_legality_matches_dynamics ] ) ]
