(* Dependence analysis tests on the paper's kernels. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module D = Dependence.Dep

let deps_of ?params p = D.analyze ?params p

let count_kind k deps = List.length (List.filter (fun d -> d.D.kind = k) deps)

let between label1 label2 deps =
  List.filter
    (fun d ->
      String.equal d.D.src.Ast.label label1
      && String.equal d.D.dst.Ast.label label2)
    deps

let test_matmul_deps () =
  let deps = deps_of (K.matmul ()) in
  (* Only C is written; every dependence is S1 -> S1 on C[I,J]:
     flow (write->read), anti (read->write), output (write->write). *)
  List.iter
    (fun d ->
      Alcotest.(check string) "src S1" "S1" d.D.src.Ast.label;
      Alcotest.(check string) "dst S1" "S1" d.D.dst.Ast.label;
      Alcotest.(check string) "on C" "C" d.D.src_ref.Loopir.Fexpr.array)
    deps;
  Alcotest.(check int) "flow" 1 (count_kind D.Flow deps);
  Alcotest.(check int) "anti" 1 (count_kind D.Anti deps);
  Alcotest.(check int) "output" 1 (count_kind D.Output deps);
  (* the dependence is carried by K only: a single disjunct at level 2 *)
  let flow = List.find (fun d -> d.D.kind = D.Flow) deps in
  Alcotest.(check int) "K-carried only" 1 (List.length flow.D.disjuncts)

let test_matmul_orders_agree () =
  (* All six loop orders have the same dependence counts. *)
  let base = List.length (deps_of (K.matmul ())) in
  List.iter
    (fun order ->
      Alcotest.(check int) "same dep count" base
        (List.length (deps_of (K.matmul ~order ()))))
    [ K.I_K_J; K.J_I_K; K.J_K_I; K.K_I_J; K.K_J_I ]

let test_cholesky_flow_s1_s2 () =
  let deps = deps_of (K.cholesky_right ()) in
  (* Section 5.1's example dependence: S1 writes A[J,J], S2 reads it. *)
  let s12 =
    List.filter (fun d -> d.D.kind = D.Flow) (between "S1" "S2" deps)
  in
  Alcotest.(check bool) "flow S1->S2 exists" true (s12 <> []);
  (* S2 scales the column that S3 consumes: flow S2 -> S3 *)
  let s23 =
    List.filter (fun d -> d.D.kind = D.Flow) (between "S2" "S3" deps)
  in
  Alcotest.(check bool) "flow S2->S3 exists" true (s23 <> []);
  (* S3 updates feed later S1 (diagonal sqrt): flow S3 -> S1 *)
  let s31 =
    List.filter (fun d -> d.D.kind = D.Flow) (between "S3" "S1" deps)
  in
  Alcotest.(check bool) "flow S3->S1 exists" true (s31 <> [])

let test_cholesky_no_backwards_flow () =
  let deps = deps_of (K.cholesky_right ()) in
  (* No dependence runs from S2 back to S1 on the same column except
     anti/output on A[J,J]?  S2 only reads A[J,J] and writes A[I,J] with
     I > J; S1 writes A[J,J]: an anti dependence S2 -> S1 (read before
     write) cannot exist within the same J, and for J' > J the cells
     differ... it must be absent entirely. *)
  Alcotest.(check int) "no S2->S1" 0 (List.length (between "S2" "S1" deps))

let test_adi_deps () =
  let deps = deps_of (K.adi ()) in
  (* S1 reads X(i-1,k) written by earlier S1: loop-carried flow on X.
     S2 writes B(i,k) read by both S1 and S2 at i+1: flow S2->S1, S2->S2. *)
  let flow_x =
    List.filter
      (fun d ->
        d.D.kind = D.Flow
        && String.equal d.D.src_ref.Loopir.Fexpr.array "X"
        && String.equal d.D.src.Ast.label "S1"
        && String.equal d.D.dst.Ast.label "S1")
      deps
  in
  Alcotest.(check bool) "flow S1->S1 on X" true (flow_x <> []);
  let flow_b21 =
    List.filter
      (fun d ->
        d.D.kind = D.Flow && String.equal d.D.src_ref.Loopir.Fexpr.array "B")
      (between "S2" "S1" deps)
  in
  Alcotest.(check bool) "flow S2->S1 on B" true (flow_b21 <> []);
  (* B is written by S2 and read by S1 of the NEXT i iteration; there is no
     flow S1 -> S2 (S1 does not write B or A or anything S2 reads; X is not
     read by S2). *)
  let s12_flow =
    List.filter (fun d -> d.D.kind = D.Flow) (between "S1" "S2" deps)
  in
  Alcotest.(check int) "no flow S1->S2" 0 (List.length s12_flow)

let test_qr_w_recurrence () =
  let deps = deps_of (K.qr ()) in
  (* w(j) accumulation: S5 -> S5 output and flow; S5 -> S6 flow on w *)
  let s56 =
    List.filter
      (fun d ->
        d.D.kind = D.Flow && String.equal d.D.src_ref.Loopir.Fexpr.array "w")
      (between "S5" "S6" deps)
  in
  Alcotest.(check bool) "flow S5->S6 on w" true (s56 <> []);
  (* tau: S2 (sqrt) feeds S3 (scale) *)
  let s23 =
    List.filter
      (fun d ->
        d.D.kind = D.Flow && String.equal d.D.src_ref.Loopir.Fexpr.array "tau")
      (between "S2" "S3" deps)
  in
  Alcotest.(check bool) "flow S2->S3 on tau" true (s23 <> [])

let test_fixed_params_prune () =
  (* With N = 1 the update loops of Cholesky are empty: S3 disappears from
     every dependence. *)
  let deps = deps_of ~params:[ ("N", 1) ] (K.cholesky_right ()) in
  Alcotest.(check bool) "no S3 deps at N=1" true
    (List.for_all
       (fun d ->
         (not (String.equal d.D.src.Ast.label "S3"))
         && not (String.equal d.D.dst.Ast.label "S3"))
       deps);
  (* at N = 2 they reappear *)
  let deps2 = deps_of ~params:[ ("N", 2) ] (K.cholesky_right ()) in
  Alcotest.(check bool) "S3 deps at N=2" true
    (List.exists (fun d -> String.equal d.D.dst.Ast.label "S3") deps2)

let test_banded_guard_restricts () =
  (* In the banded kernel with BW fixed to 1, S3's domain forces L = J+1 =
     K; updates touch only the first subdiagonal.  A flow dependence from
     S2 (scale, column J) to S3 must still exist. *)
  let deps =
    deps_of ~params:[ ("BW", 1) ] (K.cholesky_banded ())
  in
  let s23 =
    List.filter (fun d -> d.D.kind = D.Flow) (between "S2" "S3" deps)
  in
  Alcotest.(check bool) "flow S2->S3 in band" true (s23 <> [])

let test_disjunct_spaces_wellformed () =
  List.iter
    (fun (name, p) ->
      let deps = deps_of p in
      List.iter
        (fun d ->
          let dim = Array.length d.D.space.D.names in
          Alcotest.(check bool)
            (name ^ ": space covers both statements")
            true
            (dim
             = d.D.space.D.param_count + d.D.space.D.src_depth
               + d.D.space.D.dst_depth);
          List.iter
            (fun sys ->
              Alcotest.(check int)
                (name ^ ": disjunct dimension")
                dim
                (Polyhedra.System.dim sys))
            d.D.disjuncts)
        deps)
    [ ("matmul", K.matmul ()); ("cholesky_right", K.cholesky_right ());
      ("adi", K.adi ()) ]

let () =
  Alcotest.run "dependence"
    [ ( "kernels",
        [ Alcotest.test_case "matmul" `Quick test_matmul_deps;
          Alcotest.test_case "matmul orders" `Quick test_matmul_orders_agree;
          Alcotest.test_case "cholesky flows" `Quick test_cholesky_flow_s1_s2;
          Alcotest.test_case "cholesky absent dep" `Quick
            test_cholesky_no_backwards_flow;
          Alcotest.test_case "adi" `Quick test_adi_deps;
          Alcotest.test_case "qr recurrences" `Quick test_qr_w_recurrence;
          Alcotest.test_case "fixed params prune" `Quick test_fixed_params_prune;
          Alcotest.test_case "banded guard" `Quick test_banded_guard_restricts;
          Alcotest.test_case "well-formed spaces" `Quick
            test_disjunct_spaces_wellformed ] ) ]
