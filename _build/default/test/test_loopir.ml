(* Tests for the loop IR: expressions, AST traversal, pretty-printing,
   domain extraction, access matrices. *)

module B = Bigint
module E = Loopir.Expr
module Fx = Loopir.Fexpr
module Ast = Loopir.Ast
module Dom = Loopir.Domain
module K = Kernels.Builders
module A = Polyhedra.Affine
module S = Polyhedra.System
module Omega = Polyhedra.Omega

(* --- expressions --- *)

let env_of l name = List.assoc name l

let test_expr_eval () =
  let e = E.(min_ (Add (Mul (25, Var "b"), Const (-24))) (Var "N")) in
  Alcotest.(check int) "min picks block edge" 26
    (E.eval (env_of [ ("b", 2); ("N", 100) ]) e);
  Alcotest.(check int) "min picks N" 100
    (E.eval (env_of [ ("b", 5); ("N", 100) ]) e);
  Alcotest.(check int) "ceil" 4 (E.eval (env_of []) (E.CeilDiv (E.Const 7, 2)));
  Alcotest.(check int) "floor negative" (-4)
    (E.eval (env_of []) (E.FloorDiv (E.Const (-7), 2)))

let test_expr_simplify () =
  let e = E.(Add (Mul (1, Var "x"), Const 0)) in
  Alcotest.(check bool) "x+0 -> x" true (E.equal (E.simplify e) (E.Var "x"));
  let e2 = E.(Mul (0, Var "x")) in
  Alcotest.(check bool) "0*x -> 0" true (E.equal (E.simplify e2) (E.Const 0));
  let e3 = E.(Add (Const 2, Const 3)) in
  Alcotest.(check bool) "fold" true (E.equal (E.simplify e3) (E.Const 5))

let test_expr_affine_roundtrip () =
  let names = [| "N"; "I"; "J" |] in
  let lookup n = Array.find_index (String.equal n) names in
  let e = E.(Add (Mul (25, Var "I"), Sub (Var "N", Const 3))) in
  match E.to_affine ~lookup ~dim:3 e with
  | None -> Alcotest.fail "should be affine"
  | Some a ->
    Alcotest.(check string) "coeff I" "25" (B.to_string (A.coeff a 1));
    Alcotest.(check string) "coeff N" "1" (B.to_string (A.coeff a 0));
    Alcotest.(check string) "const" "-3" (B.to_string (A.const_of a));
    let back = E.of_affine ~names a in
    (* evaluate both on a sample point *)
    let env = env_of [ ("N", 10); ("I", 2); ("J", 7) ] in
    Alcotest.(check int) "same value" (E.eval env e) (E.eval env back)

let test_expr_nonaffine () =
  let lookup _ = Some 0 in
  Alcotest.(check bool) "min is not affine" true
    (E.to_affine ~lookup ~dim:1 (E.Min (E.Var "x", E.Const 3)) = None);
  Alcotest.(check bool) "div is not affine" true
    (E.to_affine ~lookup ~dim:1 (E.FloorDiv (E.Var "x", 2)) = None)

let prop_simplify_preserves =
  let gen =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
              if n <= 0 then
                oneof [ map (fun i -> E.Const i) (int_range (-20) 20);
                        oneofl [ E.Var "x"; E.Var "y" ] ]
              else
                frequency
                  [ (2, map2 (fun a b -> E.Add (a, b)) (self (n / 2)) (self (n / 2)));
                    (2, map2 (fun a b -> E.Sub (a, b)) (self (n / 2)) (self (n / 2)));
                    (1, map2 (fun k a -> E.Mul (k, a)) (int_range (-4) 4) (self (n - 1)));
                    (1, map2 (fun a b -> E.Max (a, b)) (self (n / 2)) (self (n / 2)));
                    (1, map2 (fun a b -> E.Min (a, b)) (self (n / 2)) (self (n / 2)));
                    (1, map2 (fun a d -> E.FloorDiv (a, d)) (self (n - 1)) (int_range 1 5));
                    (1, map2 (fun a d -> E.CeilDiv (a, d)) (self (n - 1)) (int_range 1 5)) ])
            (min n 8)))
  in
  QCheck.Test.make ~count:500 ~name:"simplify preserves evaluation"
    (QCheck.make ~print:E.to_string gen)
    (fun e ->
      let env = env_of [ ("x", 3); ("y", -2) ] in
      E.eval env e = E.eval env (E.simplify e))

(* --- AST traversal --- *)

let test_statements_order () =
  let p = K.cholesky_right () in
  let labels = List.map (fun (_, s) -> s.Ast.label) (Ast.statements p) in
  Alcotest.(check (list string)) "textual order" [ "S1"; "S2"; "S3" ] labels

let test_loop_vars () =
  let p = K.cholesky_right () in
  let ctx, _ = Ast.find_stmt p "S3" in
  Alcotest.(check (list string)) "S3 loops" [ "J"; "L"; "K" ] (Ast.loop_vars ctx);
  let ctx1, _ = Ast.find_stmt p "S1" in
  Alcotest.(check (list string)) "S1 loops" [ "J" ] (Ast.loop_vars ctx1)

let test_common_prefix () =
  let p = K.cholesky_right () in
  let c1, _ = Ast.find_stmt p "S1" in
  let c2, _ = Ast.find_stmt p "S2" in
  let entries, (i1, i2) = Ast.common_prefix c1 c2 in
  let loops =
    List.filter (function Ast.Eloop _ -> true | _ -> false) entries
  in
  Alcotest.(check int) "one common loop" 1 (List.length loops);
  Alcotest.(check bool) "S1 before S2" true (i1 < i2)

let test_common_prefix_siblings () =
  (* ADI: the two k loops are siblings; only the i loop is common. *)
  let p = K.adi () in
  let c1, _ = Ast.find_stmt p "S1" in
  let c2, _ = Ast.find_stmt p "S2" in
  let entries, (i1, i2) = Ast.common_prefix c1 c2 in
  let loops =
    List.filter (function Ast.Eloop _ -> true | _ -> false) entries
  in
  Alcotest.(check int) "only i common" 1 (List.length loops);
  Alcotest.(check bool) "S1's loop before S2's" true (i1 < i2)

let test_arity_ok () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " arity ok") true (Ast.arity_ok p))
    (K.all ())

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

let test_pp_contains () =
  let s = Ast.program_to_string (K.cholesky_right ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ "do J = 1, N"; "S1: A(J, J) = sqrt(A(J, J))"; "do I = J + 1, N";
      "S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)" ]

let test_rename_loop_var () =
  let p = K.matmul () in
  let body' = List.map (fun n -> Ast.rename_loop_var n "I" "t7") p.Ast.body in
  let p' = { p with Ast.body = body' } in
  let s = Ast.program_to_string p' in
  Alcotest.(check bool) "no bare I loop left" true (not (contains s "do I ="));
  let ctx, st = Ast.find_stmt p' "S1" in
  Alcotest.(check (list string)) "loop vars renamed" [ "t7"; "J"; "K" ]
    (Ast.loop_vars ctx);
  Alcotest.(check bool) "lhs index renamed" true
    (Loopir.Expr.equal (List.hd st.Ast.lhs.Fx.idx) (E.Var "t7"))

(* --- domains --- *)

let test_domain_matmul () =
  let p = K.matmul () in
  let ctx, _ = Ast.find_stmt p "S1" in
  let d = Dom.domain_of p ctx in
  Alcotest.(check int) "six bound constraints" 6
    (List.length (S.constraints d));
  Alcotest.(check bool) "inside" true
    (S.satisfied_by_ints d [| 10; 1; 5; 10 |]);
  Alcotest.(check bool) "outside" false
    (S.satisfied_by_ints d [| 10; 0; 5; 10 |])

let test_domain_triangular () =
  let p = K.cholesky_right () in
  let ctx, _ = Ast.find_stmt p "S3" in
  let d = Dom.domain_of p ctx in
  (* space: N, J, L, K; requires J+1 <= K <= L <= N *)
  Alcotest.(check bool) "valid point" true
    (S.satisfied_by_ints d [| 10; 2; 7; 5 |]);
  Alcotest.(check bool) "K > L invalid" false
    (S.satisfied_by_ints d [| 10; 2; 5; 7 |]);
  Alcotest.(check bool) "K = J invalid" false
    (S.satisfied_by_ints d [| 10; 2; 5; 2 |])

let test_domain_guard () =
  let p = K.cholesky_banded () in
  let ctx, _ = Ast.find_stmt p "S2" in
  let d = Dom.domain_of p ctx in
  (* space: N, BW, J, I; band guard I-J <= BW *)
  Alcotest.(check bool) "inside band" true
    (S.satisfied_by_ints d [| 20; 3; 2; 5 |]);
  Alcotest.(check bool) "outside band" false
    (S.satisfied_by_ints d [| 20; 3; 2; 6 |])

let test_access_matrix () =
  let p = K.matmul () in
  let ctx, s = Ast.find_stmt p "S1" in
  let m = Dom.access_matrix p ctx s.Ast.lhs in
  Alcotest.(check bool) "C access matrix" true
    (Linalg.Mat.equal m (Linalg.Mat.of_int_rows [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]));
  let b_ref = List.nth (Fx.reads s.Ast.rhs) 2 in
  let mb = Dom.access_matrix p ctx b_ref in
  Alcotest.(check bool) "B access matrix" true
    (Linalg.Mat.equal mb (Linalg.Mat.of_int_rows [ [ 0; 0; 1 ]; [ 0; 1; 0 ] ]))

let test_domain_nonaffine_rejected () =
  let bad =
    { Ast.p_name = "bad";
      params = [ "N" ];
      arrays = [ { Ast.a_name = "A"; extents = [ E.Var "N" ] } ];
      body =
        [ Ast.loop "i" (E.Const 1) (E.FloorDiv (E.Var "N", 2))
            [ Ast.stmt ~id:0 ~label:"S1"
                (Fx.ref_ "A" [ E.Var "i" ])
                (Fx.f 1.0) ] ] }
  in
  let ctx, _ = Ast.find_stmt bad "S1" in
  Alcotest.check_raises "non-affine bound"
    (Dom.Not_affine "floor((N)/2)")
    (fun () -> ignore (Dom.domain_of bad ctx))

let () =
  Alcotest.run "loopir"
    [ ( "expr",
        [ Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "simplify" `Quick test_expr_simplify;
          Alcotest.test_case "affine roundtrip" `Quick test_expr_affine_roundtrip;
          Alcotest.test_case "non-affine" `Quick test_expr_nonaffine ] );
      ( "ast",
        [ Alcotest.test_case "statement order" `Quick test_statements_order;
          Alcotest.test_case "loop vars" `Quick test_loop_vars;
          Alcotest.test_case "common prefix" `Quick test_common_prefix;
          Alcotest.test_case "sibling loops" `Quick test_common_prefix_siblings;
          Alcotest.test_case "kernel arities" `Quick test_arity_ok;
          Alcotest.test_case "pretty printing" `Quick test_pp_contains;
          Alcotest.test_case "rename loop var" `Quick test_rename_loop_var ] );
      ( "domain",
        [ Alcotest.test_case "matmul box" `Quick test_domain_matmul;
          Alcotest.test_case "triangular" `Quick test_domain_triangular;
          Alcotest.test_case "band guard" `Quick test_domain_guard;
          Alcotest.test_case "access matrices" `Quick test_access_matrix;
          Alcotest.test_case "non-affine rejected" `Quick
            test_domain_nonaffine_rejected ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_simplify_preserves ] ) ]
