(* Tests for the Section 8 automatic shackle search. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Search = Shackle.Search
module Span = Shackle.Span
module Legality = Shackle.Legality

let test_matmul_search () =
  (* every candidate is legal; the best fully constrains all references
     (e.g. the C x A product of Section 6.1) *)
  let p = K.matmul () in
  let cands = Search.search p ~size:25 in
  Alcotest.(check bool) "candidates exist" true (cands <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "all legal" true (Legality.is_legal p c.Search.spec))
    cands;
  (match Search.best p ~size:25 with
   | None -> Alcotest.fail "no best"
   | Some spec ->
     Alcotest.(check bool) "best fully constrained" true
       (Span.fully_constrained p spec);
     Alcotest.(check int) "best is a pair" 2 (List.length spec));
  (* fully-constrained candidates come first *)
  (match cands with
   | c :: _ -> Alcotest.(check bool) "head constrained" true c.Search.fully_constrained
   | [] -> ())

let test_cholesky_search () =
  let p = K.cholesky_right () in
  let cands = Search.search p ~size:16 in
  (* three legal singles (see EXPERIMENTS.md) plus their constraining
     products *)
  let singles = List.filter (fun c -> c.Search.factors = 1) cands in
  Alcotest.(check int) "three legal singles" 3 (List.length singles);
  let constrained = List.filter (fun c -> c.Search.fully_constrained) cands in
  Alcotest.(check bool) "some fully constrained products" true
    (constrained <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "constrained are products" true (c.Search.factors = 2))
    constrained

let test_search_results_execute_correctly () =
  let p = K.cholesky_right () in
  match Search.best p ~size:8 with
  | None -> Alcotest.fail "no candidate"
  | Some spec ->
    let g = Codegen.Tighten.generate p spec in
    let init = Kernels.Inits.for_kernel "cholesky_right" ~n:21 in
    Alcotest.(check bool) "best candidate is correct" true
      (Exec.Verify.equivalent p g ~params:[ ("N", 21) ] ~init)

let test_default_arrays () =
  (* ADI: no array is rank-2 *and* referenced by both statements except A
     and B; X is missing from S2 *)
  let p = K.adi () in
  let cands = Search.search p ~size:8 in
  List.iter
    (fun c ->
      List.iter
        (fun (f : Shackle.Spec.factor) ->
          Alcotest.(check bool) "X needs a dummy, so it is not auto-blocked"
            false
            (String.equal f.Shackle.Spec.blocking.Shackle.Blocking.array "X"))
        c.Search.spec)
    cands

let test_autotune_prefers_locality () =
  (* the simulation-backed ranking puts a fully blocked candidate first *)
  let p = K.matmul () in
  match Experiments.Autotune.autotune p ~size:30 ~n:90 ~kernel:"matmul" with
  | None -> Alcotest.fail "no candidate"
  | Some (best, cycles) ->
    Alcotest.(check bool) "cycles positive" true (cycles > 0.0);
    Alcotest.(check bool) "winner fully constrained" true
      best.Search.fully_constrained

let () =
  Alcotest.run "search"
    [ ( "search",
        [ Alcotest.test_case "matmul" `Quick test_matmul_search;
          Alcotest.test_case "cholesky" `Quick test_cholesky_search;
          Alcotest.test_case "best executes correctly" `Quick
            test_search_results_execute_correctly;
          Alcotest.test_case "default arrays" `Quick test_default_arrays ] );
      ( "autotune",
        [ Alcotest.test_case "prefers locality" `Slow
            test_autotune_prefers_locality ] ) ]
