(* Unit and property tests for the bignum substrate.  Properties compare
   against native [int] arithmetic on safe ranges and check algebraic laws on
   values far beyond 63 bits. *)

module B = Bigint

let bi = B.of_int

let check_b = Alcotest.testable B.pp B.equal

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int_exn (bi n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1_000_000_007; max_int;
      min_int; max_int - 1; min_int + 1 ]

let test_to_string () =
  List.iter
    (fun (s, v) -> Alcotest.(check string) s s (B.to_string v))
    [ ("0", B.zero); ("1", B.one); ("-1", B.minus_one);
      ("123456789123456789", B.of_string "123456789123456789");
      ("-1000000000000000000000000", B.of_string "-1000000000000000000000000");
      ("2305843009213693952", bi (max_int / 2 + 1)) ]

let test_roundtrip_string () =
  let s = "123456789012345678901234567890123456789" in
  Alcotest.(check string) "roundtrip" s B.(to_string (of_string s));
  Alcotest.(check string) "neg roundtrip" ("-" ^ s)
    B.(to_string (of_string ("-" ^ s)))

let test_addition_carries () =
  let big = B.of_string "99999999999999999999999999999999" in
  Alcotest.check check_b "big+1"
    (B.of_string "100000000000000000000000000000000")
    (B.add big B.one);
  Alcotest.check check_b "1+big"
    (B.of_string "100000000000000000000000000000000")
    (B.add B.one big)

let test_mul_identity () =
  let big = B.of_string "123456789012345678901234567890" in
  Alcotest.check check_b "x*1" big (B.mul big B.one);
  Alcotest.check check_b "x*0" B.zero (B.mul big B.zero);
  Alcotest.check check_b "x*-1" (B.neg big) (B.mul big B.minus_one)

let test_mul_known () =
  Alcotest.check check_b "squaring"
    (B.of_string "15241578753238836750495351562536198787501905199875019052100")
    (let x = B.of_string "123456789012345678901234567890" in
     B.mul x x)

let test_div_rem_known () =
  let a = B.of_string "10000000000000000000000000000000000000001" in
  let b = B.of_string "314159265358979" in
  let q, r = B.div_rem a b in
  Alcotest.check check_b "reconstruct" a B.(add (mul q b) r);
  Alcotest.(check bool) "remainder small" true
    (B.compare (B.abs r) (B.abs b) < 0)

let test_fdiv_signs () =
  let cases =
    [ (7, 2, 3); (-7, 2, -4); (7, -2, -4); (-7, -2, 3); (6, 3, 2); (-6, 3, -2) ]
  in
  List.iter
    (fun (a, b, expect) ->
      Alcotest.check check_b
        (Printf.sprintf "fdiv %d %d" a b)
        (bi expect)
        (B.fdiv (bi a) (bi b)))
    cases

let test_cdiv_signs () =
  let cases =
    [ (7, 2, 4); (-7, 2, -3); (7, -2, -3); (-7, -2, 4); (6, 3, 2) ]
  in
  List.iter
    (fun (a, b, expect) ->
      Alcotest.check check_b
        (Printf.sprintf "cdiv %d %d" a b)
        (bi expect)
        (B.cdiv (bi a) (bi b)))
    cases

let test_gcd () =
  Alcotest.check check_b "gcd 12 18" (bi 6) (B.gcd (bi 12) (bi 18));
  Alcotest.check check_b "gcd 0 5" (bi 5) (B.gcd B.zero (bi 5));
  Alcotest.check check_b "gcd 0 0" B.zero (B.gcd B.zero B.zero);
  Alcotest.check check_b "gcd neg" (bi 4) (B.gcd (bi (-12)) (bi 8));
  let a = B.of_string "123456789012345678901234567890" in
  Alcotest.check check_b "gcd self" (B.abs a) (B.gcd a (B.neg a))

let test_lcm () =
  Alcotest.check check_b "lcm 4 6" (bi 12) (B.lcm (bi 4) (bi 6));
  Alcotest.check check_b "lcm 0 5" B.zero (B.lcm B.zero (bi 5))

let test_pow () =
  Alcotest.check check_b "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  Alcotest.check check_b "x^0" B.one (B.pow (bi 999) 0);
  Alcotest.check check_b "(-3)^3" (bi (-27)) (B.pow (bi (-3)) 3)

let test_compare_order () =
  let sorted =
    [ B.of_string "-100000000000000000000"; bi (-5); B.zero; bi 5;
      B.of_string "100000000000000000000" ]
  in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (Stdlib.compare i j)
            (B.compare x y))
        sorted)
    sorted

let test_to_int_bounds () =
  Alcotest.(check (option int)) "max_int" (Some max_int)
    (B.to_int_opt (bi max_int));
  Alcotest.(check (option int)) "min_int" (Some min_int)
    (B.to_int_opt (bi min_int));
  Alcotest.(check (option int)) "max_int+1" None
    (B.to_int_opt B.(add (bi max_int) one));
  Alcotest.(check (option int)) "min_int-1" None
    (B.to_int_opt B.(sub (bi min_int) one))

(* Property tests. *)

let mid_int = QCheck.int_range (-1_000_000) 1_000_000

let arb_big =
  (* Pairs of ints combined multiplicatively give values beyond 63 bits. *)
  QCheck.map
    (fun (a, b, c) -> B.add (B.mul (bi a) (bi b)) (bi c))
    QCheck.(triple int int int)

let prop_add_matches_int =
  QCheck.Test.make ~count:1000 ~name:"add matches native int"
    QCheck.(pair mid_int mid_int)
    (fun (a, b) -> B.to_int_exn (B.add (bi a) (bi b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~count:1000 ~name:"mul matches native int"
    QCheck.(pair mid_int mid_int)
    (fun (a, b) -> B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_div_rem_reconstruct =
  QCheck.Test.make ~count:1000 ~name:"div_rem reconstructs"
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.div_rem a b in
      B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0)

let prop_fdiv_floor =
  QCheck.Test.make ~count:1000 ~name:"fdiv is floor"
    QCheck.(pair mid_int (int_range 1 10000))
    (fun (a, b) ->
      let q = B.to_int_exn (B.fdiv (bi a) (bi b)) in
      (q * b <= a) && ((q + 1) * b > a))

let prop_frem_sign =
  QCheck.Test.make ~count:1000 ~name:"frem has divisor sign"
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let r = B.frem a b in
      B.is_zero r || B.sign r = B.sign b)

let prop_cdiv_vs_fdiv =
  QCheck.Test.make ~count:1000 ~name:"cdiv a b = -fdiv (-a) b"
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      B.equal (B.cdiv a b) (B.neg (B.fdiv (B.neg a) b)))

let prop_gcd_divides =
  QCheck.Test.make ~count:500 ~name:"gcd divides both"
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      let g = B.gcd a b in
      QCheck.assume (not (B.is_zero g));
      B.is_zero (B.frem a g) && B.is_zero (B.frem b g))

let prop_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"string roundtrip"
    arb_big
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_ring_laws =
  QCheck.Test.make ~count:500 ~name:"distributivity on large values"
    QCheck.(triple arb_big arb_big arb_big)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_compare_antisym =
  QCheck.Test.make ~count:500 ~name:"compare antisymmetric"
    QCheck.(pair arb_big arb_big)
    (fun (a, b) -> B.compare a b = -B.compare b a)

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "string roundtrip" `Quick test_roundtrip_string;
          Alcotest.test_case "addition carries" `Quick test_addition_carries;
          Alcotest.test_case "mul identities" `Quick test_mul_identity;
          Alcotest.test_case "mul known value" `Quick test_mul_known;
          Alcotest.test_case "div_rem known value" `Quick test_div_rem_known;
          Alcotest.test_case "fdiv signs" `Quick test_fdiv_signs;
          Alcotest.test_case "cdiv signs" `Quick test_cdiv_signs;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "total order" `Quick test_compare_order;
          Alcotest.test_case "to_int bounds" `Quick test_to_int_bounds ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_matches_int; prop_mul_matches_int;
            prop_div_rem_reconstruct; prop_fdiv_floor; prop_frem_sign;
            prop_cdiv_vs_fdiv; prop_gcd_divides; prop_string_roundtrip;
            prop_ring_laws; prop_compare_antisym ] ) ]
