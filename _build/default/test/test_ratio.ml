(* Tests for exact rationals. *)

module B = Bigint
module Q = Ratio

let q = Q.of_ints
let check_q = Alcotest.testable Q.pp Q.equal

let test_canonical () =
  Alcotest.check check_q "6/4 = 3/2" (q 3 2) (q 6 4);
  Alcotest.check check_q "-6/-4 = 3/2" (q 3 2) (q (-6) (-4));
  Alcotest.check check_q "6/-4 = -3/2" (q (-3) 2) (q 6 (-4));
  Alcotest.(check string) "den positive" "2" (B.to_string (Q.den (q 5 (-10)) |> B.neg |> B.neg));
  Alcotest.(check int) "sign of 0/7" 0 (Q.sign (q 0 7))

let test_arith () =
  Alcotest.check check_q "1/2 + 1/3" (q 5 6) (Q.add (q 1 2) (q 1 3));
  Alcotest.check check_q "1/2 - 1/3" (q 1 6) (Q.sub (q 1 2) (q 1 3));
  Alcotest.check check_q "2/3 * 3/4" (q 1 2) (Q.mul (q 2 3) (q 3 4));
  Alcotest.check check_q "1/2 / 1/4" (Q.of_int 2) (Q.div (q 1 2) (q 1 4))

let test_floor_ceil () =
  let check name expect v =
    Alcotest.(check string) name expect (B.to_string v)
  in
  check "floor 7/2" "3" (Q.floor (q 7 2));
  check "ceil 7/2" "4" (Q.ceil (q 7 2));
  check "floor -7/2" "-4" (Q.floor (q (-7) 2));
  check "ceil -7/2" "-3" (Q.ceil (q (-7) 2));
  check "floor 4/2" "2" (Q.floor (q 4 2));
  check "ceil 4/2" "2" (Q.ceil (q 4 2))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(q 1 3 < q 1 2);
  Alcotest.(check bool) "-1/2 < -1/3" true Q.(q (-1) 2 < q (-1) 3);
  Alcotest.(check bool) "min" true (Q.equal (Q.min (q 1 3) (q 1 2)) (q 1 3))

let test_div_by_zero () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Q.make B.one B.zero));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let arb_q =
  QCheck.map
    (fun (n, d) -> q n d)
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 10000))

let prop_add_comm =
  QCheck.Test.make ~count:500 ~name:"addition commutes" (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_mul_inverse =
  QCheck.Test.make ~count:500 ~name:"x * 1/x = 1" arb_q (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal Q.one (Q.mul a (Q.inv a)))

let prop_field_distrib =
  QCheck.Test.make ~count:500 ~name:"distributivity"
    QCheck.(triple arb_q arb_q arb_q)
    (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_floor_le =
  QCheck.Test.make ~count:500 ~name:"floor <= x < floor+1" arb_q (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.(f <= a) && Q.(a < Q.add f Q.one))

let prop_canonical =
  QCheck.Test.make ~count:500 ~name:"canonical form" arb_q (fun a ->
      B.sign (Q.den a) > 0 && B.equal (B.gcd (Q.num a) (Q.den a)) B.one
      || Q.is_zero a)

let () =
  Alcotest.run "ratio"
    [ ( "unit",
        [ Alcotest.test_case "canonical form" `Quick test_canonical;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_comm; prop_mul_inverse; prop_field_distrib; prop_floor_le;
            prop_canonical ] ) ]
