(* Tests for code generation: the naive Figure-5 form, the tightened
   Figure-6/7/10/14 form, execution-order preservation against the
   reference semantics, and numeric equivalence across kernels, block
   sizes and boundary cases. *)

module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module E = Loopir.Expr
module Walk = Loopir.Walk
module K = Kernels.Builders
module Blocking = Shackle.Blocking
module Spec = Shackle.Spec
module Refsem = Shackle.Refsem
module Naive = Codegen.Naive
module Tighten = Codegen.Tighten

let v = E.var
let rf a idx = Fexpr.ref_ a (List.map v idx)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

let matmul_c_spec size =
  [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size) [ ("S1", rf "C" [ "I"; "J" ]) ] ]

let cholesky_write_spec size =
  [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
        ("S3", rf "A" [ "L"; "K" ]) ] ]

(* --- naive form --- *)

let test_naive_ranges () =
  let p = K.matmul () in
  match Naive.coord_loop_ranges p (matmul_c_spec 25) with
  | [ ("t1", lo1, hi1); ("t2", _, _) ] ->
    let at_n n e = E.eval (function "N" -> n | _ -> assert false) e in
    Alcotest.(check int) "lo" 1 (at_n 100 lo1);
    Alcotest.(check int) "hi 100" 4 (at_n 100 hi1);
    Alcotest.(check int) "hi 101" 5 (at_n 101 hi1);
    Alcotest.(check int) "hi 1" 1 (at_n 1 hi1)
  | _ -> Alcotest.fail "expected two coordinate loops"

let test_naive_equivalent () =
  let p = K.matmul () in
  let naive = Naive.generate p (matmul_c_spec 7) in
  let init = Kernels.Inits.for_kernel "matmul" ~n:10 in
  Alcotest.(check bool) "same results" true
    (Exec.Verify.equivalent p naive ~params:[ ("N", 10) ] ~init)

let test_naive_name_collision () =
  let p = K.matmul () in
  let renamed =
    { p with
      Ast.body = List.map (fun n -> Ast.rename_loop_var n "I" "t1") p.Ast.body }
  in
  Alcotest.(check bool) "collision rejected" true
    (try
       ignore (Naive.generate renamed (matmul_c_spec 7));
       false
     with Invalid_argument _ -> true)

(* --- tightened form: structure --- *)

let test_figure6_shape () =
  let p = K.matmul () in
  let s = Ast.program_to_string (Tighten.generate p (matmul_c_spec 25)) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ "do t1 = 1, floor((N + 24)/25)"; "do I = 25*t1 - 24, min(N, 25*t1)";
      "do J = 25*t2 - 24, min(N, 25*t2)"; "do K = 1, N" ];
  (* no residual guards in the perfectly blocked form *)
  let loops, guards = Tighten.stats (Tighten.generate p (matmul_c_spec 25)) in
  Alcotest.(check int) "five loops" 5 loops;
  Alcotest.(check int) "no guards" 0 guards

let test_figure10_shape () =
  (* two-level blocking: outer 64 on C and A, inner 8 on C and A *)
  let p = K.matmul () in
  let c_ref = [ ("S1", rf "C" [ "I"; "J" ]) ] in
  let a_ref = [ ("S1", rf "A" [ "I"; "K" ]) ] in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:64) c_ref;
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:64) a_ref;
      Spec.factor (Blocking.blocks_2d ~array:"C" ~size:8) c_ref;
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:8) a_ref ]
  in
  let g = Tighten.generate p spec in
  let s = Ast.program_to_string g in
  (* redundant coordinates (A's row block = C's row block) collapse away,
     leaving 6 block loops + 3 point loops, all unguarded *)
  let loops, guards = Tighten.stats g in
  Alcotest.(check int) "nine loops" 9 loops;
  Alcotest.(check int) "no guards" 0 guards;
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ "do t5 = 8*t1 - 7, min("; "do I = 8*t5 - 7, min(N, 8*t5)" ]

let test_figure14_shape () =
  let p = K.adi () in
  let blk = Blocking.storage_order ~array:"B" ~rank:2 `Col_major in
  let bref = Fexpr.ref_ "B" [ E.Sub (E.var "i", E.Const 1); E.var "k" ] in
  let spec = [ Spec.factor blk [ ("S1", bref); ("S2", bref) ] ] in
  let g = Tighten.generate p spec in
  let s = Ast.program_to_string g in
  (* fusion + interchange: two loops, no guards, statements adjacent *)
  let loops, guards = Tighten.stats g in
  Alcotest.(check int) "two loops" 2 loops;
  Alcotest.(check int) "no guards" 0 guards;
  Alcotest.(check bool) "t1 outer over columns" true
    (contains s "do t1 = 1, N");
  Alcotest.(check bool) "t2 inner" true (contains s "do t2 = 1, N - 1");
  Alcotest.(check bool) "S1 fused" true (contains s "S1: X(t2 + 1, t1)");
  Alcotest.(check bool) "S2 fused" true (contains s "S2: B(t2 + 1, t1)")

let test_cholesky_tightened_structure () =
  let p = K.cholesky_right () in
  let g = Tighten.generate p (cholesky_write_spec 64) in
  let s = Ast.program_to_string g in
  Alcotest.(check bool) "triangular block loop" true (contains s "do t2 = 1, t1");
  (* the hot update statement S3 carries no residual guard: its enclosing
     loops enforce everything *)
  let rec s3_guard_free ~under_if = function
    | Ast.Stmt st -> not (under_if && String.equal st.Ast.label "S3")
    | Ast.If (_, body) -> List.for_all (s3_guard_free ~under_if:true) body
    | Ast.Loop l -> List.for_all (s3_guard_free ~under_if) l.Ast.body
  in
  Alcotest.(check bool) "S3 unguarded" true
    (List.for_all (s3_guard_free ~under_if:false) g.Ast.body)

(* --- order preservation against the reference semantics --- *)

let instances_of_generated g ~params ~loop_vars =
  (* project each executed instance onto the original loop variables *)
  let acc = ref [] in
  Walk.iter_instances g ~params ~f:(fun s env ->
      let vals =
        List.map (fun v -> (v, Walk.lookup env v)) loop_vars
      in
      acc := (s.Ast.id, vals) :: !acc);
  List.rev !acc

let test_order_matches_refsem_matmul () =
  let p = K.matmul () in
  let spec = matmul_c_spec 4 in
  let params = [ ("N", 9) ] in
  let g = Tighten.generate ~collapse:false p spec in
  let got =
    instances_of_generated g ~params ~loop_vars:[ "I"; "J"; "K" ]
  in
  let expect =
    List.map
      (fun i ->
        ( i.Refsem.stmt.Ast.id,
          List.map
            (fun v -> (v, Walk.lookup i.Refsem.env v))
            [ "I"; "J"; "K" ] ))
      (Refsem.order p spec ~params)
  in
  Alcotest.(check bool) "same execution order" true (got = expect)

let test_order_matches_refsem_cholesky () =
  let p = K.cholesky_right () in
  let spec = cholesky_write_spec 5 in
  let params = [ ("N", 11) ] in
  let g = Tighten.generate ~collapse:false p spec in
  let acc = ref [] in
  Walk.iter_instances g ~params ~f:(fun s env ->
      let vars = match s.Ast.label with
        | "S1" -> [ "J" ] | "S2" -> [ "J"; "I" ] | _ -> [ "J"; "L"; "K" ]
      in
      acc := (s.Ast.id, List.map (fun v -> (v, Walk.lookup env v)) vars) :: !acc);
  let got = List.rev !acc in
  let expect =
    List.map
      (fun i ->
        let vars = match i.Refsem.stmt.Ast.label with
          | "S1" -> [ "J" ] | "S2" -> [ "J"; "I" ] | _ -> [ "J"; "L"; "K" ]
        in
        ( i.Refsem.stmt.Ast.id,
          List.map (fun v -> (v, Walk.lookup i.Refsem.env v)) vars ))
      (Refsem.order p spec ~params)
  in
  Alcotest.(check bool) "same execution order" true (got = expect)

(* --- numeric equivalence across kernels and boundary cases --- *)

let equiv ?layouts name p spec params init =
  let tight = Tighten.generate p spec in
  Alcotest.(check bool) (name ^ " tightened") true
    (Exec.Verify.equivalent ?layouts p tight ~params ~init);
  let naive = Naive.generate p spec in
  Alcotest.(check bool) (name ^ " naive") true
    (Exec.Verify.equivalent ?layouts p naive ~params ~init)

let test_matmul_boundary_sizes () =
  let p = K.matmul () in
  let init = Kernels.Inits.for_kernel "matmul" ~n:0 in
  List.iter
    (fun (n, b) ->
      equiv
        (Printf.sprintf "matmul N=%d B=%d" n b)
        p (matmul_c_spec b) [ ("N", n) ] init)
    [ (10, 3); (10, 10); (10, 16); (1, 2); (7, 7); (8, 3) ]

let test_matmul_all_orders () =
  List.iter
    (fun order ->
      let p = K.matmul ~order () in
      equiv "matmul order" p (matmul_c_spec 4) [ ("N", 9) ]
        (Kernels.Inits.for_kernel "matmul" ~n:9))
    [ K.I_J_K; K.K_J_I; K.J_K_I ]

let test_cholesky_sizes () =
  let p = K.cholesky_right () in
  List.iter
    (fun (n, b) ->
      let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
      equiv
        (Printf.sprintf "cholesky N=%d B=%d" n b)
        p (cholesky_write_spec b) [ ("N", n) ] init)
    [ (20, 6); (16, 16); (13, 4); (5, 8) ]

let test_cholesky_read_shackle () =
  let p = K.cholesky_right () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:6)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
          ("S3", rf "A" [ "K"; "J" ]) ] ]
  in
  equiv "cholesky read shackle" p spec [ ("N", 17) ]
    (Kernels.Inits.for_kernel "cholesky_right" ~n:17)

let test_cholesky_product_fully_blocked () =
  let p = K.cholesky_right () in
  let write_f =
    Spec.factor (Blocking.blocks_2d ~array:"A" ~size:6)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
        ("S3", rf "A" [ "L"; "K" ]) ]
  in
  let read_f =
    Spec.factor (Blocking.blocks_2d ~array:"A" ~size:6)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
        ("S3", rf "A" [ "K"; "J" ]) ]
  in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n:19 in
  (* both product orders are legal and correct (Section 6.1) *)
  equiv "write x read" p [ write_f; read_f ] [ ("N", 19) ] init;
  equiv "read x write" p [ read_f; write_f ] [ ("N", 19) ] init

let test_left_cholesky_shackle () =
  let p = K.cholesky_left () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:5)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
          ("S3", rf "A" [ "L"; "J" ]) ] ]
  in
  Alcotest.(check bool) "legal" true (Shackle.Legality.is_legal p spec);
  equiv "left cholesky" p spec [ ("N", 14) ]
    (Kernels.Inits.for_kernel "cholesky_left" ~n:14)

let test_gmtry_shackle () =
  let p = K.gmtry () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:6)
        [ ("S1", rf "A" [ "i"; "k" ]); ("S2", rf "A" [ "i"; "j" ]) ] ]
  in
  Alcotest.(check bool) "legal" true (Shackle.Legality.is_legal p spec);
  equiv "gmtry" p spec [ ("N", 17) ]
    (Kernels.Inits.for_kernel "gmtry" ~n:17)

let test_qr_column_shackle () =
  (* Section 7: QR is blocked by columns only. *)
  let p = K.qr () in
  let col w = Blocking.by_columns ~array:"A" ~width:w in
  let spec =
    [ Spec.factor (col 4)
        [ ("S0", rf "A" [ "k"; "k" ]); ("S1", rf "A" [ "i"; "k" ]);
          ("S2", rf "A" [ "k"; "k" ]); ("S3", rf "A" [ "i"; "k" ]);
          ("S4", rf "A" [ "k"; "j" ]); ("S5", rf "A" [ "i"; "j" ]);
          ("S6", rf "A" [ "i"; "j" ]) ] ]
  in
  Alcotest.(check bool) "legal" true (Shackle.Legality.is_legal p spec);
  equiv "qr columns" p spec [ ("N", 13) ]
    (Kernels.Inits.for_kernel "qr" ~n:13)

let test_adi_equivalence () =
  let p = K.adi () in
  let blk = Blocking.storage_order ~array:"B" ~rank:2 `Col_major in
  let bref = Fexpr.ref_ "B" [ E.Sub (E.var "i", E.Const 1); E.var "k" ] in
  let spec = [ Spec.factor blk [ ("S1", bref); ("S2", bref) ] ] in
  equiv "adi" p spec [ ("N", 23) ] (Kernels.Inits.for_kernel "adi" ~n:23)

let test_banded_cholesky_shackle () =
  let p = K.cholesky_banded () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:5)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
          ("S3", rf "A" [ "L"; "K" ]) ] ]
  in
  Alcotest.(check bool) "legal" true (Shackle.Legality.is_legal p spec);
  let n = 18 and bw = 4 in
  let dense = Kernels.Inits.for_kernel "cholesky_banded" ~n in
  let init name idx =
    if abs (idx.(0) - idx.(1)) > bw then 0.0 else dense name idx
  in
  equiv "banded" p spec [ ("N", n); ("BW", bw) ] init;
  (* and the generated code still works when A is physically reshaped into
     band storage (the paper's post-processing data transformation) *)
  equiv ~layouts:[ ("A", Exec.Store.Banded bw) ] "banded storage" p spec
    [ ("N", n); ("BW", bw) ] init

let test_two_level_equivalence () =
  let p = K.matmul () in
  let c_ref = [ ("S1", rf "C" [ "I"; "J" ]) ] in
  let a_ref = [ ("S1", rf "A" [ "I"; "K" ]) ] in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:16) c_ref;
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:16) a_ref;
      Spec.factor (Blocking.blocks_2d ~array:"C" ~size:4) c_ref;
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:4) a_ref ]
  in
  let tight = Tighten.generate p spec in
  Alcotest.(check bool) "two-level equivalent" true
    (Exec.Verify.equivalent p tight ~params:[ ("N", 21) ]
       ~init:(Kernels.Inits.for_kernel "matmul" ~n:21))

let prop_random_blocks_preserve_order =
  (* for random block sizes and problem sizes, the generated matmul code
     executes instances in exactly the reference-semantics order *)
  QCheck.Test.make ~count:25 ~name:"random blocks match refsem order"
    QCheck.(pair (int_range 2 17) (int_range 5 26))
    (fun (b, n) ->
      let p = K.matmul () in
      let spec = matmul_c_spec b in
      let params = [ ("N", n) ] in
      let g = Tighten.generate ~collapse:false p spec in
      let got =
        instances_of_generated g ~params ~loop_vars:[ "I"; "J"; "K" ]
      in
      let expect =
        List.map
          (fun i ->
            ( i.Refsem.stmt.Ast.id,
              List.map
                (fun v -> (v, Walk.lookup i.Refsem.env v))
                [ "I"; "J"; "K" ] ))
          (Refsem.order p spec ~params)
      in
      got = expect)

let prop_random_blocks_equivalent =
  QCheck.Test.make ~count:15 ~name:"random cholesky blocks compute the factor"
    QCheck.(pair (int_range 2 13) (int_range 6 22))
    (fun (b, n) ->
      let p = K.cholesky_right () in
      let g = Tighten.generate p (cholesky_write_spec b) in
      let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
      Exec.Verify.equivalent p g ~params:[ ("N", n) ] ~init)

let () =
  Alcotest.run "codegen"
    [ ( "naive",
        [ Alcotest.test_case "coordinate ranges" `Quick test_naive_ranges;
          Alcotest.test_case "equivalence" `Quick test_naive_equivalent;
          Alcotest.test_case "name collision" `Quick test_naive_name_collision ] );
      ( "structure",
        [ Alcotest.test_case "Figure 6 (matmul)" `Quick test_figure6_shape;
          Alcotest.test_case "Figure 10 (two-level)" `Quick test_figure10_shape;
          Alcotest.test_case "Figure 14 (ADI fusion)" `Quick test_figure14_shape;
          Alcotest.test_case "Figure 7 (cholesky)" `Quick
            test_cholesky_tightened_structure ] );
      ( "order",
        [ Alcotest.test_case "matmul matches refsem" `Quick
            test_order_matches_refsem_matmul;
          Alcotest.test_case "cholesky matches refsem" `Quick
            test_order_matches_refsem_cholesky ] );
      ( "equivalence",
        [ Alcotest.test_case "matmul boundaries" `Slow test_matmul_boundary_sizes;
          Alcotest.test_case "matmul loop orders" `Slow test_matmul_all_orders;
          Alcotest.test_case "cholesky sizes" `Slow test_cholesky_sizes;
          Alcotest.test_case "cholesky read shackle" `Quick
            test_cholesky_read_shackle;
          Alcotest.test_case "cholesky products" `Slow
            test_cholesky_product_fully_blocked;
          Alcotest.test_case "left-looking cholesky" `Quick
            test_left_cholesky_shackle;
          Alcotest.test_case "gmtry" `Quick test_gmtry_shackle;
          Alcotest.test_case "qr columns" `Slow test_qr_column_shackle;
          Alcotest.test_case "adi" `Quick test_adi_equivalence;
          Alcotest.test_case "banded cholesky + band storage" `Slow
            test_banded_cholesky_shackle;
          Alcotest.test_case "two-level matmul" `Slow test_two_level_equivalence ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_blocks_preserve_order; prop_random_blocks_equivalent ] )
    ]
