(* Tests for exact vectors/matrices, in particular the row-span test backing
   Theorem 2 of the paper. *)

module B = Bigint
module V = Linalg.Vec
module M = Linalg.Mat

let test_vec_ops () =
  let a = V.of_ints [ 1; 2; 3 ] and b = V.of_ints [ 4; 5; 6 ] in
  Alcotest.(check bool) "add" true (V.equal (V.add a b) (V.of_ints [ 5; 7; 9 ]));
  Alcotest.(check bool) "sub" true
    (V.equal (V.sub b a) (V.of_ints [ 3; 3; 3 ]));
  Alcotest.(check string) "dot" "32" (B.to_string (V.dot a b));
  Alcotest.(check bool) "unit" true
    (V.equal (V.unit 3 1) (V.of_ints [ 0; 1; 0 ]));
  Alcotest.(check string) "content" "3"
    (B.to_string (V.content (V.of_ints [ 6; -9; 12 ])));
  Alcotest.(check bool) "zero vector content" true
    (B.is_zero (V.content (V.make 4)))

let test_mat_mul () =
  let a = M.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = M.of_int_rows [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.(check bool) "mul" true
    (M.equal (M.mul a b) (M.of_int_rows [ [ 19; 22 ]; [ 43; 50 ] ]));
  Alcotest.(check bool) "identity" true (M.equal (M.mul a (M.identity 2)) a);
  Alcotest.(check bool) "transpose" true
    (M.equal (M.transpose a) (M.of_int_rows [ [ 1; 3 ]; [ 2; 4 ] ]))

let test_rank () =
  let check name expect m = Alcotest.(check int) name expect (M.rank m) in
  check "identity" 3 (M.identity 3);
  check "zero" 0 (M.of_int_rows [ [ 0; 0 ]; [ 0; 0 ] ]);
  check "dependent rows" 1 (M.of_int_rows [ [ 1; 2 ]; [ 2; 4 ]; [ 3; 6 ] ]);
  check "full 2x3" 2 (M.of_int_rows [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]);
  check "rank 2 of 3" 2
    (M.of_int_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ]);
  check "needs row swap" 2 (M.of_int_rows [ [ 0; 1 ]; [ 1; 0 ] ])

let test_row_span_paper_example () =
  (* Section 6.2 of the paper: access matrix of C[I,J] in matmul(I,J,K) is
     [[1;0;0];[0;1;0]]; row [0;0;1] of B[K,J]'s access matrix is not spanned;
     adding A[I,K]'s rows makes every reference constrained. *)
  let c_rows = M.of_int_rows [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
  let b_mat = M.of_int_rows [ [ 0; 0; 1 ]; [ 0; 1; 0 ] ] in
  Alcotest.(check bool) "C alone does not constrain B" false
    (M.rows_span c_rows b_mat);
  let c_and_a =
    M.of_int_rows [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 0; 0; 1 ] ]
  in
  Alcotest.(check bool) "C x A constrains B" true (M.rows_span c_and_a b_mat)

let test_row_span_edge () =
  let m0 = M.of_int_rows [] in
  Alcotest.(check bool) "empty spans zero" true
    (M.in_row_span m0 (V.make 0));
  let m = M.of_int_rows [ [ 2; 4 ] ] in
  Alcotest.(check bool) "rational combination" true
    (M.in_row_span m (V.of_ints [ 1; 2 ]));
  Alcotest.(check bool) "scaled" true (M.in_row_span m (V.of_ints [ 3; 6 ]));
  Alcotest.(check bool) "not in span" false
    (M.in_row_span m (V.of_ints [ 1; 3 ]))

(* Properties. *)

let arb_mat rows cols =
  QCheck.map
    (fun cells ->
      Array.of_list
        (List.map (fun r -> Array.of_list (List.map B.of_int r)) cells))
    QCheck.(list_of_size (QCheck.Gen.return rows)
              (list_of_size (QCheck.Gen.return cols) (int_range (-9) 9)))

let prop_rank_le_dims =
  QCheck.Test.make ~count:300 ~name:"rank <= min(rows,cols)" (arb_mat 3 4)
    (fun m -> M.rank m <= 3 && M.rank m <= 4)

let prop_rank_transpose =
  QCheck.Test.make ~count:300 ~name:"rank m = rank m^T" (arb_mat 3 4)
    (fun m -> M.rank m = M.rank (M.transpose m))

let prop_span_rows =
  QCheck.Test.make ~count:300 ~name:"every row is in own span" (arb_mat 3 4)
    (fun m ->
      Array.for_all (fun r -> M.in_row_span m (Array.copy r)) m)

let prop_span_combination =
  QCheck.Test.make ~count:300 ~name:"row combinations stay in span"
    QCheck.(pair (arb_mat 2 3) (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (m, (a, b)) ->
      QCheck.assume (M.rows m = 2);
      let combo =
        V.add (V.scale (B.of_int a) m.(0)) (V.scale (B.of_int b) m.(1))
      in
      M.in_row_span m combo)

let () =
  Alcotest.run "linalg"
    [ ( "unit",
        [ Alcotest.test_case "vector ops" `Quick test_vec_ops;
          Alcotest.test_case "matrix mul" `Quick test_mat_mul;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "Theorem 2 matmul example" `Quick
            test_row_span_paper_example;
          Alcotest.test_case "row span edges" `Quick test_row_span_edge ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rank_le_dims; prop_rank_transpose; prop_span_rows;
            prop_span_combination ] ) ]
