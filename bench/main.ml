(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) plus the code-shape figures from the body of the
   paper, times the compiler passes and one representative simulation
   point per figure with Bechamel, and optionally writes the whole run as
   a machine-readable BENCH_*.json trajectory for CI to gate on.

   Usage:  dune exec bench/main.exe                       (everything)
           dune exec bench/main.exe -- --quick            (smaller sizes)
           dune exec bench/main.exe -- --quick --no-bench --domains 4 \
               --json BENCH_quick.json                    (CI smoke run)
           dune exec bench/main.exe -- --figure fig11 --figure fig15
           dune exec bench/main.exe -- --check-json BENCH_quick.json
           dune exec bench/main.exe -- --list-figures *)

module F = Experiments.Figures
module K = Kernels.Builders
module Model = Machine.Model
module Json = Observe.Json
module Metrics = Observe.Metrics

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

type opts = {
  quick : bool;
  json : string option;       (* write the trajectory here *)
  figures : string list;      (* selected figure ids, [] = all *)
  domains : int;              (* work-pool width, 1 = sequential *)
  par_exec : bool;            (* block-scheduler execution per point *)
  specialize : bool;          (* per-size program specialization *)
  mode : Model.trace_mode;    (* record/replay vs legacy callback *)
  bechamel : bool;            (* run the micro-benchmarks *)
  check_json : string option; (* validate a trajectory file and exit *)
  diff_json : (string * string) option; (* compare two trajectories and exit *)
  list_figures : bool;
}

let die msg =
  prerr_endline ("bench: " ^ msg ^ " (try --help)");
  exit 2

(* Flags come from the shared {!Cli} module: --quick, --json, --domains,
   --timeout-ms and --fuel spell the same as in shacklec and fuzz.  The
   budget pair is applied process-wide via [Omega.set_default_budget], so
   every solver context the figures build inherits it. *)
let parse_args argv =
  let quick = ref false and json = ref None and figures = ref [] in
  let domains = ref 1 and mode = ref Model.Replay and no_bench = ref false in
  let par_exec = ref false and no_specialize = ref false in
  let check_json = ref None and diff_json = ref None in
  let list_figures = ref false in
  let timeout_ms = ref None and fuel = ref None in
  let specs =
    [ Cli.quick quick; Cli.json json;
      Cli.timeout_ms timeout_ms; Cli.fuel fuel;
      Cli.string_list "--figure" ~docv:"ID"
        ~doc:"run only figure ID (repeatable; see --list-figures)" figures;
      Cli.domains domains;
      Cli.par_exec par_exec;
      Cli.flag "--no-specialize"
        ~doc:
          "execute the symbolic programs instead of per-size specialized \
           ones (differential baseline; simulated rows must be identical)"
        no_specialize;
      Cli.choice "--trace-mode" ~docv:"MODE"
        ~doc:
          "replay (default: record once, replay per series) or callback \
           (legacy: re-execute per series)"
        [ ("replay", Model.Replay); ("callback", Model.Callback) ]
        mode;
      Cli.flag "--no-bench" ~doc:"skip the Bechamel micro-benchmarks" no_bench;
      Cli.flag "--no-bechamel" ~doc:"alias for --no-bench" no_bench;
      Cli.string_opt "--check-json" ~docv:"PATH"
        ~doc:"validate a BENCH_*.json file and exit" check_json;
      Cli.string_pair_opt "--diff-json" ~docv:"A B"
        ~doc:"compare the simulated rows/metrics of two BENCH files and exit"
        diff_json;
      Cli.flag "--list-figures" ~doc:"print the known figure ids and exit"
        list_figures ]
  in
  (match Cli.parse ~prog:"bench" ~specs (List.tl (Array.to_list argv)) with
  | Ok () -> ()
  | Error msg -> die msg);
  if !par_exec && !mode = Model.Callback then
    die "--par-exec requires --trace-mode replay";
  Polyhedra.Omega.set_default_budget ?fuel:!fuel ?timeout_ms:!timeout_ms ();
  { quick = !quick;
    json = !json;
    figures = !figures;
    domains = !domains;
    par_exec = !par_exec;
    specialize = not !no_specialize;
    mode = !mode;
    bechamel = not !no_bench;
    check_json = !check_json;
    diff_json = !diff_json;
    list_figures = !list_figures }

(* ------------------------------------------------------------------ *)
(* Schema validation for --check-json                                  *)
(* ------------------------------------------------------------------ *)

let load_json path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "bench: %s: no such file\n" path;
    exit 1
  end;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  match Json.of_string raw with
  | Error msg ->
    Printf.eprintf "bench: %s: %s\n" path msg;
    exit 1
  | Ok j -> j

(* CI calls this on the freshly written trajectory, so a missing file,
   unparseable JSON, or a schema drift all fail the workflow loudly.
   Validation lives in the shared {!Report} registry; this wrapper pins
   the family so only bench trajectories pass. *)
let check_json path =
  let j = load_json path in
  let fail msg =
    Printf.eprintf "bench: %s: schema error: %s\n" path msg;
    exit 1
  in
  (match Report.check j with
   | Ok tag when String.equal tag Report.bench -> ()
   | Ok tag -> fail (Printf.sprintf "schema %S, expected %S" tag Report.bench)
   | Error e -> fail e);
  Printf.printf "%s: OK\n" path;
  exit 0

(* ------------------------------------------------------------------ *)
(* Replay-equivalence diff for --diff-json                             *)
(* ------------------------------------------------------------------ *)

(* Compare the simulated content of two trajectories: figure rows (all
   columns) and every simulated metric quantity (flops, instances,
   accesses, per-level stats, cycles, mflops).  Wall-clock fields
   ("seconds", trace accounting) and run configuration ("domains",
   "trace_mode") are ignored, so a --trace-mode callback run and a replay
   run of the same figures must diff clean — that is the CI gate on the
   record/replay pipeline. *)
let diff_json path_a path_b =
  let figures path =
    match Json.member "figures" (load_json path) with
    | Some (Json.List figs) ->
      List.map
        (fun fig ->
          match Json.member "id" fig with
          | Some (Json.Str id) -> (id, fig)
          | _ ->
            Printf.eprintf "bench: %s: figure lacks a string id\n" path;
            exit 1)
        figs
    | _ ->
      Printf.eprintf "bench: %s: no figures list\n" path;
      exit 1
  in
  let fa = figures path_a and fb = figures path_b in
  let mismatch = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> mismatch := s :: !mismatch) fmt in
  if List.map fst fa <> List.map fst fb then
    complain "figure ids differ: [%s] vs [%s]"
      (String.concat ", " (List.map fst fa))
      (String.concat ", " (List.map fst fb))
  else
    List.iter2
      (fun (id, ja) (_, jb) ->
        let rows j =
          match Json.member "rows" j with
          | Some r -> Json.to_string r
          | None -> "<missing>"
        in
        if rows ja <> rows jb then complain "figure %s: rows differ" id;
        let sims j =
          match Json.member "metrics" j with
          | Some (Json.List ms) ->
            List.map
              (fun m ->
                match Metrics.sim_of_json m with
                | Ok s ->
                  (* normalize everything that may legitimately differ *)
                  Metrics.sim_to_json
                    { s with Metrics.sim_seconds = 0.0; sim_trace = None; sim_sched = None }
                  |> Json.to_string
                | Error e ->
                  Printf.eprintf "bench: figure %s: bad metrics: %s\n" id e;
                  exit 1)
              ms
          | _ -> []
        in
        let sa = sims ja and sb = sims jb in
        if List.length sa <> List.length sb then
          complain "figure %s: %d vs %d metrics rows" id (List.length sa)
            (List.length sb)
        else
          List.iteri
            (fun i (a, b) ->
              if a <> b then
                complain "figure %s: metrics row %d differs:\n  %s\n  %s" id i
                  a b)
            (List.combine sa sb))
      fa fb;
  match List.rev !mismatch with
  | [] ->
    Printf.printf "%s and %s: simulated rows and metrics identical\n" path_a
      path_b;
    exit 0
  | ms ->
    List.iter (fun m -> Printf.eprintf "bench: diff: %s\n" m) ms;
    exit 1

(* ------------------------------------------------------------------ *)
(* The shackled server figure (--figure server)                        *)
(* ------------------------------------------------------------------ *)

(* Deliberately outside the F registry: it measures the daemon's disk
   cache over a real Unix socket, not a simulated paper figure, so the CI
   golden-diff gate never sees it and it only runs when asked for by
   name.  Two passes share one cache directory — a cold daemon on an
   empty cache, then a warm restart of a fresh process state on the same
   directory — each serving the same legality workload twice over.  The
   warm row must show zero solver solves: every verdict comes back from
   the in-process memo or the disk. *)

module Srv = Server.Daemon
module Dcache = Server.Diskcache
module SClient = Server.Client
module SProto = Server.Proto

let server_resolver () =
  { Srv.rv_kernels = (fun () -> K.all ());
    rv_spec =
      (fun ~kernel ~spec ~size -> Experiments.Specs.lookup ~kernel ~spec ~size);
    rv_params =
      (fun ~kernel ~n ->
        if String.equal kernel "cholesky_banded" then
          [ ("N", n); ("BW", max 1 (n / 3)) ]
        else [ ("N", n) ]);
    rv_init = (fun ~kernel ~n -> Kernels.Inits.for_kernel kernel ~n) }

let server_queries ~quick =
  if quick then
    [ ("matmul", "c", 8); ("matmul", "ca", 8); ("cholesky_right", "write", 6) ]
  else
    [ ("matmul", "c", 8); ("matmul", "ca", 8); ("matmul", "two-level", 16);
      ("cholesky_right", "write", 6); ("cholesky_right", "full", 6);
      ("qr", "columns", 6); ("gmtry", "write", 6); ("adi", "fused", 4) ]

let server_pass ~dir ~socket ~queries label =
  let cache = Dcache.open_dir dir in
  let t = Srv.create ~cache (server_resolver ()) in
  let d = Domain.spawn (fun () -> Srv.serve t ~socket) in
  let rec wait n =
    if not (Sys.file_exists socket) then begin
      if n = 0 then failwith "bench: shackled daemon did not come up";
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let c = SClient.connect socket in
  (* each query twice: the repeat must hit the in-process memo *)
  List.iter
    (fun (kernel, spec, size) ->
      match
        SClient.rpc c (SProto.Legal { kernel; spec; size; budget_ms = None })
      with
      | Ok (SProto.R_verdict _) -> ()
      | Ok _ -> failwith "bench: legal RPC returned an unexpected reply shape"
      | Error e ->
        failwith
          (Printf.sprintf "bench: %s pass, %s/%s: %s" label kernel spec
             e.SProto.e_message))
    (queries @ queries);
  let stats =
    match SClient.rpc c SProto.Stats with
    | Ok (SProto.R_stats j) -> j
    | _ -> failwith "bench: stats RPC failed"
  in
  ignore (SClient.rpc c SProto.Shutdown);
  SClient.close c;
  Domain.join d;
  Dcache.close cache;
  stats

let server_figure ~quick () =
  let t0 = Metrics.now_s () in
  let dir = Filename.temp_file "shackled-bench" ".cache" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "shackled.sock" in
  let queries = server_queries ~quick in
  let cold = server_pass ~dir ~socket ~queries "cold" in
  let warm = server_pass ~dir ~socket ~queries "warm" in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let geti j k =
    match Option.bind j (Json.member k) with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  let row label stats =
    let solver = Json.member "solver" stats in
    let dc = Json.member "diskcache" stats in
    let queries = geti solver "queries" in
    let solves = geti (Some stats) "solves" in
    let served = queries - solves in
    { F.r_label = label;
      r_cols =
        [ ("queries", float_of_int queries);
          ("solves", float_of_int solves);
          ("memo hits", float_of_int (geti solver "cache_hits"));
          ("disk hits", float_of_int (geti dc "hits"));
          ( "hit rate %",
            if queries = 0 then 0.0
            else 100.0 *. float_of_int served /. float_of_int queries ) ] }
  in
  { F.f_id = "server";
    f_title = "shackled daemon: cold start vs warm restart on one disk cache";
    f_header = [ "queries"; "solves"; "memo hits"; "disk hits"; "hit rate %" ];
    f_rows = [ row "cold (empty cache dir)" cold; row "warm (same cache dir)" warm ];
    f_note =
      "legality queries answered by a live shackled daemon over a Unix \
       socket; the warm restart re-opens the cold pass's cache directory, \
       so it must report zero Omega solves";
    f_domains = 1;
    f_par = 0;
    f_mode = Model.Replay;
    f_seconds = Metrics.now_s () -. t0;
    f_codegen_seconds = 0.0;
    f_solver = None;
    f_metrics = [] }

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let section title = Printf.printf "\n================ %s ================\n" title

let show_code title code =
  section title;
  print_string code

let show_figure fig = Format.printf "%a" F.pp_figure fig

let code_figures () =
  show_code "Figure 3: blocked matmul (C x A product, 25x25)" (F.fig3_code ());
  show_code "Figure 5: naive C-shackled matmul" (F.fig5_code ());
  show_code "Figure 6: simplified C-shackled matmul" (F.fig6_code ());
  show_code "Figure 7: shackled right-looking Cholesky (64x64)" (F.fig7_code ());
  show_code "Figure 10: two-level blocked matmul (64 then 8)" (F.fig10_code ());
  let before, after = F.fig14_code () in
  show_code "Figure 14(i): ADI input code" before;
  show_code "Figure 14(ii): ADI after the 1x1 storage-order shackle" after

let perf_figures { quick; figures; domains; par_exec; specialize; mode; _ } =
  (* with --par-exec the --domains value doubles as the block-scheduler
     worker count; simulated quantities are identical either way *)
  let par = if par_exec then domains else 0 in
  (* "server" is resolved here, not in the F registry — see above *)
  let want_server = List.mem "server" figures in
  let rest = List.filter (fun id -> not (String.equal id "server")) figures in
  let wanted =
    match rest with
    | [] when want_server -> []
    | [] -> F.ids
    | ids ->
      List.iter
        (fun id ->
          if not (List.mem id F.ids) then
            die
              (Printf.sprintf "unknown figure %s (known: %s)" id
                 (String.concat ", " ("server" :: F.ids))))
        ids;
      ids
  in
  section
    (Printf.sprintf
       "Performance figures (simulated SP-2 stand-in; %d domain%s; %s trace \
        mode%s; see DESIGN.md)"
       domains
       (if domains = 1 then "" else "s")
       (Model.trace_mode_string mode)
       (if par_exec then "; parallel block execution" else "")
       ^ if specialize then "" else "; no specialization");
  let figs =
    List.map
      (fun id ->
        let fig =
          Option.get (F.run_by_id id ~quick ~domains ~par ~mode ~specialize ())
        in
        show_figure fig;
        fig)
      wanted
  in
  if want_server then begin
    let fig = server_figure ~quick () in
    show_figure fig;
    figs @ [ fig ]
  end
  else figs

(* ------------------------------------------------------------------ *)
(* The JSON trajectory                                                 *)
(* ------------------------------------------------------------------ *)

let write_json path ~opts ~figures ~total_seconds =
  let j =
    Json.Obj
      [ ("schema_version", Json.Int 1);
        ("generator", Json.Str "bench/main.exe");
        ("quick", Json.Bool opts.quick);
        ("domains", Json.Int opts.domains);
        ("par_exec", Json.Bool opts.par_exec);
        ("specialize", Json.Bool opts.specialize);
        ("trace_mode", Json.Str (Model.trace_mode_string opts.mode));
        ("total_seconds", Json.Float total_seconds);
        ("figures", Json.List (List.map F.figure_to_json figures)) ]
  in
  (* every envelope goes through the registry before it hits disk, so a
     writer drifting from the schema fails the run that produced it, not
     the later --check-json of a stale artifact *)
  (match Report.check j with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "bench: refusing to write %s: schema error: %s\n" path e;
    exit 1);
  let oc = open_out_bin path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d figures, %.2fs total)\n" path
    (List.length figures) total_seconds

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let stage name fn = Test.make ~name (Staged.stage fn)

let bench_tests () =
  let sim ?(machine = Model.sp2_like) prog ~n ~kernel ~quality ?(params = []) () =
    ignore
      (Model.simulate ~machine ~quality prog
         ~params:(("N", n) :: params)
         ~init:(Kernels.Inits.for_kernel kernel ~n))
  in
  (* one pipeline (and thus one solver context) per source program; the
     codegen stages therefore measure steady-state generation with a warm
     legality memo table, which is how the autotuner runs it *)
  let matmul_pipe = Pipeline.create (K.matmul ()) in
  let cholesky = K.cholesky_right () in
  let cholesky_pipe = Pipeline.create cholesky in
  let adi_pipe = Pipeline.create (K.adi ()) in
  let cholesky_blocked =
    Pipeline.codegen cholesky_pipe
      (Experiments.Specs.cholesky_fully_blocked ~size:16)
  in
  let qr_blocked =
    Pipeline.codegen (Pipeline.create (K.qr ())) (Experiments.Specs.qr_columns ~width:8)
  in
  let gmtry_blocked =
    Pipeline.codegen (Pipeline.create (K.gmtry ()))
      (Experiments.Specs.gmtry_write ~size:16)
  in
  let adi_fused = Pipeline.codegen adi_pipe (Experiments.Specs.adi_fused ()) in
  let banded_blocked =
    Pipeline.codegen
      (Pipeline.create (K.cholesky_banded ()))
      (Experiments.Specs.cholesky_banded_write ~size:16)
  in
  [ stage "fig3_codegen" (fun () ->
        Pipeline.codegen matmul_pipe (Experiments.Specs.matmul_ca ~size:25));
    stage "fig6_codegen" (fun () ->
        Pipeline.codegen matmul_pipe (Experiments.Specs.matmul_c ~size:25));
    stage "fig7_codegen" (fun () ->
        Pipeline.codegen cholesky_pipe
          (Experiments.Specs.cholesky_write ~size:64));
    stage "fig10_codegen" (fun () ->
        Pipeline.codegen matmul_pipe
          (Experiments.Specs.matmul_two_level ~outer:64 ~inner:8));
    stage "fig14_codegen" (fun () ->
        Pipeline.codegen adi_pipe (Experiments.Specs.adi_fused ()));
    stage "fig11_sim_point" (fun () ->
        sim cholesky_blocked ~n:48 ~kernel:"cholesky_right"
          ~quality:Model.untuned ());
    stage "fig12_sim_point" (fun () ->
        sim qr_blocked ~n:32 ~kernel:"qr" ~quality:Model.untuned ());
    stage "fig13i_sim_point" (fun () ->
        sim gmtry_blocked ~n:48 ~kernel:"gmtry" ~quality:Model.untuned ());
    stage "fig13ii_sim_point" (fun () ->
        sim adi_fused ~n:100 ~kernel:"adi" ~quality:Model.untuned ());
    stage "fig15_sim_point" (fun () ->
        sim banded_blocked ~n:100 ~kernel:"cholesky_banded"
          ~quality:Model.untuned ~params:[ ("BW", 8) ] ());
    stage "tab_legality_check" (fun () ->
        Shackle.Legality.is_legal cholesky
          (Experiments.Specs.cholesky_write ~size:16));
    stage "abl_tiling_point" (fun () ->
        sim (Tiling.cholesky_update_tiled ~size:16) ~n:48
          ~kernel:"cholesky_right" ~quality:Model.untuned ());
    stage "abl_multilevel_point" (fun () ->
        sim ~machine:Model.two_level
          (Pipeline.codegen matmul_pipe
             (Experiments.Specs.matmul_two_level ~outer:32 ~inner:8))
          ~n:64 ~kernel:"matmul" ~quality:Model.untuned ()) ]

let run_bechamel ~quick =
  section "Bechamel micro-benchmarks (wall-clock per run)";
  let tests = Test.make_grouped ~name:"paper" ~fmt:"%s %s" (bench_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* print name -> estimated ns/run *)
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
            | _ -> Printf.printf "%-40s %12s\n" name "n/a")
          tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let opts = parse_args Sys.argv in
  (match opts.check_json with Some path -> check_json path | None -> ());
  (match opts.diff_json with
   | Some (a, b) -> diff_json a b
   | None -> ());
  if opts.list_figures then begin
    List.iter print_endline (F.ids @ [ "server" ]);
    exit 0
  end;
  let t0 = Metrics.now_s () in
  if opts.figures = [] then code_figures ();
  let figures = perf_figures opts in
  let total_seconds = Metrics.now_s () -. t0 in
  if opts.bechamel then run_bechamel ~quick:opts.quick;
  (match opts.json with
   | Some path -> write_json path ~opts ~figures ~total_seconds
   | None -> ());
  print_newline ()
