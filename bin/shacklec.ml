(* shacklec: a command-line driver for the data-shackling compiler.

     shacklec list
     shacklec show cholesky_right
     shacklec block matmul --spec c --size 25        (print blocked code)
     shacklec block matmul --spec c --size 25 --naive
     shacklec legal cholesky_right --spec write --size 64
     shacklec choices cholesky_right                 (all shackles + verdicts)
     shacklec verify matmul --spec ca --size 16 --n 40
     shacklec sim cholesky_right --spec full --size 32 --n 120 [--tuned]
     shacklec tune matmul --size 16 --n 64 --json TUNE.json
     shacklec tune --check-json TUNE.json

   Specs per kernel (see Experiments.Specs):
     matmul:           c | ca | two-level
     cholesky_right:   write | read | full | left
     cholesky_banded:  write
     qr:               columns
     gmtry:            write
     adi:              fused                                               *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Specs = Experiments.Specs
module Legality = Shackle.Legality
module Model = Machine.Model
module Json = Observe.Json
module Omega = Polyhedra.Omega

(* ------------------------------------------------------------------ *)
(* Shared argument pieces                                              *)
(* ------------------------------------------------------------------ *)

let kernel_positional cell =
  ( "KERNEL",
    fun v ->
      match !cell with
      | Some _ -> Error (Printf.sprintf "unexpected extra argument %S" v)
      | None -> begin
        match List.assoc_opt v (K.all ()) with
        | Some p ->
          cell := Some (v, p);
          Ok ()
        | None ->
          Error
            (Printf.sprintf "unknown kernel %s (try: %s)" v
               (String.concat ", " (List.map fst (K.all ()))))
      end )

let machine_alts =
  [ ("sp2-like", Model.sp2_like); ("two-level", Model.two_level);
    ("small-cache", Model.small_cache) ]
let quality_alts = [ ("untuned", Model.untuned); ("tuned", Model.tuned) ]

let spec_flag cell =
  Cli.string_opt "--spec" ~docv:"SPEC"
    ~doc:"which shackle to use (kernel-specific; see the file header)" cell

let size_flag cell = Cli.int "--size" ~docv:"B" ~doc:"block size (default 32)" cell
let n_flag cell = Cli.int "--n" ~docv:"N" ~doc:"problem size (default 64)" cell
let bw_flag cell = Cli.int "--bw" ~docv:"BW" ~doc:"bandwidth (banded kernels)" cell

let machine_flag cell =
  Cli.choice_list "--machine" ~docv:"MACHINE" machine_alts
    ~doc:
      "machine model to simulate (sp2-like, two-level or small-cache; repeatable) — every \
       (machine, quality) variant replays one recorded trace"
    cell

let quality_flag cell =
  Cli.choice_list "--quality" ~docv:"QUALITY" quality_alts
    ~doc:"inner-loop code quality (untuned or tuned; repeatable)" cell

let spec_of (name, _p) spec ~size =
  match Specs.lookup ~kernel:name ~spec ~size with
  | Some s -> s
  | None -> failwith (Printf.sprintf "no spec %s for kernel %s" spec name)

let params_of (name, _) ~n ~bw =
  if String.equal name "cholesky_banded" then [ ("N", n); ("BW", bw) ]
  else [ ("N", n) ]

let init_of (name, _) ~n ~bw =
  let base = Kernels.Inits.for_kernel name ~n in
  if String.equal name "cholesky_banded" then fun a idx ->
    if abs (idx.(0) - idx.(1)) > bw then 0.0 else base a idx
  else base

(* --connect routes the request to a running shackled daemon instead of
   computing locally; the daemon resolves the same kernel/spec names
   through the same Specs.lookup table. *)
let remote_rpc ~prog addr req k =
  let c = Server.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      match Server.Client.rpc c req with
      | Ok reply -> k reply
      | Error e ->
        Printf.eprintf "%s: %s: %s\n" prog e.Server.Proto.e_code e.e_message;
        1)

let with_kernel ~prog cell k =
  match !cell with
  | Some kernel -> k kernel
  | None ->
    Printf.eprintf "%s: expects a KERNEL argument (try --help)\n" prog;
    2

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file file text =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  Cli.cmd "list" ~doc:"list the available kernels" (fun args ->
      Cli.run ~prog:"shacklec list" ~specs:[] args (fun () ->
          List.iter (fun (n, _) -> print_endline n) (K.all ());
          0))

let show_cmd =
  Cli.cmd "show" ~doc:"print a kernel's source program" (fun args ->
      let prog = "shacklec show" in
      let kernel = ref None in
      Cli.run ~prog ~positional:(kernel_positional kernel) ~specs:[] args
        (fun () ->
          with_kernel ~prog kernel (fun (_, p) ->
              print_string (Ast.program_to_string p);
              0)))

let block_cmd =
  Cli.cmd "block" ~doc:"shackle a kernel and print the generated blocked code"
    (fun args ->
      let prog = "shacklec block" in
      let kernel = ref None and spec = ref None and size = ref 32 in
      let naive = ref false and stages = ref None and n = ref 0 in
      let specs =
        [ spec_flag spec; size_flag size;
          Cli.flag "--naive" ~doc:"print the naive (Figure 5) form" naive;
          Cli.string_opt "--stages" ~docv:"S1,S2,..."
            ~doc:
              (Printf.sprintf
                 "extra simplifier stages to compose after codegen \
                  (comma-separated; known: %s)"
                 (String.concat ", " (Loopir.Stages.names ())))
            stages;
          Cli.int "--n" ~docv:"N"
            ~doc:
              "also specialize at problem size N (prints the solver-free \
               specialized program: entailed guards dropped, min/max \
               bounds peeled)"
            n ]
      in
      Cli.run ~prog ~positional:(kernel_positional kernel) ~specs args (fun () ->
          with_kernel ~prog kernel (fun ((_, p) as k) ->
              let s = spec_of k (Option.value ~default:"default" !spec) ~size:!size in
              match
                match !stages with
                | None -> []
                | Some names ->
                  Loopir.Stages.of_names
                    (List.filter
                       (fun s -> s <> "")
                       (String.split_on_char ',' names))
              with
              | exception Invalid_argument msg ->
                Printf.eprintf "%s: %s\n" prog msg;
                2
              | stages ->
                let g =
                  Pipeline.codegen ~naive:!naive ~stages (Pipeline.create p) s
                in
                print_string (Ast.program_to_string g);
                if !n > 0 then begin
                  Printf.printf "\n! specialized at N = %d\n" !n;
                  print_string
                    (Ast.program_to_string
                       (Loopir.Stages.specialize ~params:[ ("N", !n) ] g))
                end;
                0)))

let legal_cmd =
  Cli.cmd "legal" ~doc:"run the Theorem 1 legality test" (fun args ->
      let prog = "shacklec legal" in
      let kernel = ref None and spec = ref None and size = ref 32 in
      let timeout_ms = ref None and fuel = ref None and connect = ref None in
      let budget_ms = ref None in
      Cli.run ~prog ~positional:(kernel_positional kernel)
        ~specs:
          [ spec_flag spec; size_flag size; Cli.timeout_ms timeout_ms;
            Cli.fuel fuel; Cli.connect connect; Cli.budget_ms budget_ms ]
        args (fun () ->
          with_kernel ~prog kernel (fun ((name, p) as k) ->
              let spec_name = Option.value ~default:"default" !spec in
              match !connect with
              | Some addr ->
                remote_rpc ~prog addr
                  (Server.Proto.Probe
                     { kernel = name; spec = spec_name; size = !size;
                       budget_ms = !budget_ms })
                  (function
                    | Server.Proto.R_verdict { verdict } ->
                      print_endline verdict;
                      if String.equal verdict "legal" then 0 else 1
                    | _ ->
                      Printf.eprintf "%s: unexpected reply\n" prog;
                      1)
              | None ->
                let s = spec_of k spec_name ~size:!size in
                let solver =
                  Omega.Ctx.create ~cache:true ?fuel:!fuel
                    ?timeout_ms:!timeout_ms ()
                in
                (match Pipeline.check (Pipeline.create ~solver p) s with
                | Legality.Legal ->
                  print_endline "legal";
                  0
                | (Legality.Illegal _ | Legality.Unknown _) as v ->
                  Format.printf "%a@." Legality.pp_verdict v;
                  1))))

let choices_cmd =
  Cli.cmd "choices"
    ~doc:
      "enumerate all single-factor shackles of the kernel's main array and \
       test each" (fun args ->
      let prog = "shacklec choices" in
      let kernel = ref None and size = ref 32 in
      Cli.run ~prog ~positional:(kernel_positional kernel)
        ~specs:[ size_flag size ] args (fun () ->
          with_kernel ~prog kernel (fun (_, p) ->
              let array = (List.hd p.Ast.arrays).Ast.a_name in
              let pipe = Pipeline.create p in
              List.iter
                (fun choices ->
                  let spec =
                    [ Shackle.Spec.factor
                        (Shackle.Blocking.blocks_2d ~array ~size:!size)
                        choices ]
                  in
                  let label =
                    String.concat "; "
                      (List.map
                         (fun (l, r) ->
                           Printf.sprintf "%s:%s" l
                             (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
                         choices)
                  in
                  Printf.printf "%-60s %s\n" label
                    (if Pipeline.is_legal pipe spec then "legal" else "ILLEGAL"))
                (Pipeline.choices pipe ~array);
              0)))

let verify_cmd =
  Cli.cmd "verify"
    ~doc:
      "generate blocked code and check it computes the same values as the \
       original" (fun args ->
      let prog = "shacklec verify" in
      let kernel = ref None and spec = ref None in
      let size = ref 32 and n = ref 64 and bw = ref 8 in
      Cli.run ~prog ~positional:(kernel_positional kernel)
        ~specs:[ spec_flag spec; size_flag size; n_flag n; bw_flag bw ] args
        (fun () ->
          with_kernel ~prog kernel (fun ((_, p) as k) ->
              let s = spec_of k (Option.value ~default:"default" !spec) ~size:!size in
              let diff =
                Pipeline.verify (Pipeline.create p) ~spec:s
                  ~params:(params_of k ~n:!n ~bw:!bw)
                  ~init:(init_of k ~n:!n ~bw:!bw)
              in
              Printf.printf "max |difference| = %g\n" diff;
              if diff <= 1e-9 then 0 else 1)))

let bounds_cmd =
  Cli.cmd "bounds"
    ~doc:
      "analytic communication lower bounds: per-statement HBL exponents \
       and the per-level miss bound (compulsory / windowed / phase), \
       compared against the simulated misses" (fun args ->
      let prog = "shacklec bounds" in
      let kernel = ref None and spec = ref None in
      let size = ref 32 and n = ref 64 and bw = ref 8 in
      let machines = ref [] and json = ref None and no_sim = ref false in
      let specs =
        [ spec_flag spec; size_flag size; n_flag n; bw_flag bw;
          machine_flag machines; Cli.json json;
          Cli.flag "--no-sim"
            ~doc:"skip the simulated-misses comparison (bounds only)" no_sim ]
      in
      Cli.run ~prog ~positional:(kernel_positional kernel) ~specs args (fun () ->
          with_kernel ~prog kernel (fun ((name, p) as k) ->
              let params = params_of k ~n:!n ~bw:!bw in
              let spec_name = !spec in
              let spec =
                Option.map (fun s -> spec_of k s ~size:!size) spec_name
              in
              let machines =
                match !machines with [] -> [ Model.sp2_like ] | ms -> ms
              in
              match Bounds.analyze ?spec ~params p with
              | exception Loopir.Domain.Not_affine _ ->
                Printf.eprintf "%s: %s is not affine\n" prog name;
                1
              | t ->
                Printf.printf "bounds %s at %s%s\n" name
                  (String.concat ", "
                     (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params))
                  (match spec_name with
                  | None -> " (order-free: any execution order)"
                  | Some s ->
                    Printf.sprintf " under --spec %s --size %d" s !size);
                List.iter
                  (fun (s : Bounds.stmt_info) ->
                    Printf.printf
                      "  %s: depth %d, %d instances, sigma %s\n"
                      s.Bounds.si_label s.Bounds.si_depth s.Bounds.si_iterations
                      (Ratio.to_string s.Bounds.si_sigma))
                  (Bounds.stmts t);
                Printf.printf "  distinct elements >= %d\n" (Bounds.distinct t);
                let machine_json = ref [] in
                List.iter
                  (fun (m : Model.t) ->
                    let line_elems =
                      max 1
                        ((List.hd m.Model.levels).Model.l_cache
                           .Machine.Cache.line_bytes / m.Model.elem_bytes)
                    in
                    let levels =
                      Bounds.levels_of ~line_elems
                        (List.map
                           (fun (l : Model.level_spec) ->
                             ( l.Model.l_name,
                               l.Model.l_cache.Machine.Cache.size_bytes
                               / m.Model.elem_bytes ))
                           m.Model.levels)
                    in
                    let sim =
                      if !no_sim then None
                      else
                        Some
                          (Model.simulate ~machine:m ~quality:Model.untuned p
                             ~params ~init:(init_of k ~n:!n ~bw:!bw))
                    in
                    Printf.printf "  %s:\n" m.Model.m_name;
                    let level_json = ref [] in
                    List.iteri
                      (fun i (lb : Bounds.level_bound) ->
                        let simulated =
                          Option.map
                            (fun (r : Model.result) ->
                              (List.nth r.Model.r_levels i).Model.s_misses)
                            sim
                        in
                        Printf.printf
                          "    %s: misses >= %d (compulsory %d, windowed %d, \
                           phase %d)%s\n"
                          lb.Bounds.lb_level lb.Bounds.lb_misses
                          lb.Bounds.lb_compulsory lb.Bounds.lb_windowed
                          lb.Bounds.lb_hbl
                          (match simulated with
                          | Some mi when lb.Bounds.lb_misses > 0 ->
                            Printf.sprintf "; simulated %d (headroom %.2f)" mi
                              (float_of_int mi /. float_of_int lb.Bounds.lb_misses)
                          | Some mi -> Printf.sprintf "; simulated %d" mi
                          | None -> "");
                        level_json :=
                          ( lb.Bounds.lb_level,
                            Json.Obj
                              ([ ("misses", Json.Int lb.Bounds.lb_misses);
                                 ("compulsory", Json.Int lb.Bounds.lb_compulsory);
                                 ("windowed", Json.Int lb.Bounds.lb_windowed);
                                 ("phase", Json.Int lb.Bounds.lb_hbl) ]
                              @
                              match simulated with
                              | None -> []
                              | Some mi -> [ ("simulated", Json.Int mi) ]) )
                          :: !level_json)
                      (Bounds.level_bounds t levels);
                    machine_json :=
                      ( m.Model.m_name,
                        Json.Obj (List.rev !level_json) )
                      :: !machine_json)
                  machines;
                (match !json with
                | Some file ->
                  write_file file
                    (Json.to_string ~pretty:true
                       (Json.Obj
                          [ ("schema", Json.Str "bounds-report/1");
                            ("kernel", Json.Str name);
                            ( "params",
                              Json.Obj
                                (List.map (fun (k, v) -> (k, Json.Int v)) params)
                            );
                            ( "stmts",
                              Json.List
                                (List.map
                                   (fun (s : Bounds.stmt_info) ->
                                     Json.Obj
                                       [ ("label", Json.Str s.Bounds.si_label);
                                         ("depth", Json.Int s.Bounds.si_depth);
                                         ( "iterations",
                                           Json.Int s.Bounds.si_iterations );
                                         ( "sigma",
                                           Json.Str
                                             (Ratio.to_string s.Bounds.si_sigma)
                                         ) ])
                                   (Bounds.stmts t)) );
                            ("distinct", Json.Int (Bounds.distinct t));
                            ("machines", Json.Obj (List.rev !machine_json)) ])
                    ^ "\n")
                | None -> ());
                0)))

let sim_cmd =
  Cli.cmd "sim"
    ~doc:
      "simulate original and blocked code and report both (one recording per \
       program, replayed per machine/quality)" (fun args ->
      let prog = "shacklec sim" in
      let kernel = ref None and spec = ref None in
      let size = ref 32 and n = ref 64 and bw = ref 8 in
      let tuned = ref false and machines = ref [] and qualities = ref [] in
      let par_exec = ref false and domains = ref 2 and cores = ref 2 in
      let no_specialize = ref false and connect = ref None in
      let budget_ms = ref None in
      let specs =
        [ spec_flag spec; size_flag size; n_flag n; bw_flag bw;
          Cli.flag "--tuned"
            ~doc:"simulate with hand-tuned inner-loop quality (unless --quality)"
            tuned;
          machine_flag machines; quality_flag qualities;
          Cli.flag "--no-specialize"
            ~doc:
              "record the symbolic program instead of the per-size \
               specialized one (the trace, and so every simulated \
               quantity, is identical either way)"
            no_specialize;
          Cli.par_exec par_exec; Cli.domains domains;
          Cli.int "--cores" ~docv:"C"
            ~doc:
              "virtual cores for the shared-L2 multicore replay under \
               --par-exec (default 2)"
            cores;
          Cli.connect connect; Cli.budget_ms budget_ms ]
      in
      Cli.run ~prog ~positional:(kernel_positional kernel) ~specs args (fun () ->
          with_kernel ~prog kernel (fun ((name, p) as k) ->
              match !connect with
              | Some addr ->
                let machine =
                  (match !machines with m :: _ -> m | [] -> Model.sp2_like)
                    .Model.m_name
                in
                let quality =
                  (match !qualities with
                  | q :: _ -> q
                  | [] -> if !tuned then Model.tuned else Model.untuned)
                    .Model.q_name
                in
                let sim spec =
                  Server.Proto.Sim
                    { kernel = name; spec; size = !size; n = !n; machine;
                      quality; budget_ms = !budget_ms }
                in
                let show label = function
                  | Server.Proto.R_sim { cycles; mflops; flops; accesses } ->
                    Printf.printf
                      "%-10s %-9s %-7s %.0f cycles, %.2f mflops, %d flops, \
                       %d accesses\n"
                      label machine quality cycles mflops flops accesses;
                    0
                  | _ ->
                    Printf.eprintf "%s: unexpected reply\n" prog;
                    1
                in
                let rc = remote_rpc ~prog addr (sim None) (show "original") in
                if rc <> 0 then rc
                else
                  remote_rpc ~prog addr
                    (sim (Some (Option.value ~default:"default" !spec)))
                    (show "blocked")
              | None ->
              let s = spec_of k (Option.value ~default:"default" !spec) ~size:!size in
              let pipe = Pipeline.create p in
              let machines =
                match !machines with [] -> [ Model.sp2_like ] | ms -> ms
              in
              let qualities =
                match !qualities with
                | [] -> [ (if !tuned then Model.tuned else Model.untuned) ]
                | qs -> qs
              in
              let variants =
                List.concat_map
                  (fun m -> List.map (fun q -> (m, q)) qualities)
                  machines
              in
              let params = params_of k ~n:!n ~bw:!bw in
              let init = init_of k ~n:!n ~bw:!bw in
              let go label spec =
                (* the scheduler's merged recording is byte-identical to
                   the sequential one, so every replay below is unchanged
                   by --par-exec; the extra output is the plan shape and
                   the shared-L2 multicore replay *)
                let recording, sched =
                  if !par_exec then begin
                    let plan = Sched.plan pipe ~spec ~params in
                    let recording, res =
                      Sched.record ~domains:!domains plan ~init
                    in
                    (recording, Some (plan, res))
                  end
                  else if !no_specialize then
                    (Pipeline.record ?spec pipe ~params ~init, None)
                  else
                    (* per-size specialized variant: same trace, faster
                       interpretation (one Omega derivation per spec) *)
                    ( Model.record
                        (Pipeline.specialize ?spec pipe ~params)
                        ~params ~init,
                      None )
                in
                let tr = recording.Model.rec_trace in
                Format.printf "%s: recorded %d accesses (%d chunks, %d KB)@."
                  label (Trace.length tr) (Trace.num_chunks tr)
                  (Trace.bytes tr / 1024);
                (match sched with
                 | None -> ()
                 | Some (plan, res) ->
                   let st = res.Sched.x_stats in
                   Format.printf
                     "  sched: %d task%s, %d edges, %d wavefronts (max width \
                      %d), %s mode%s, %d domain%s, %d steals, %d stalls@."
                     st.Sched.st_tasks
                     (if st.Sched.st_tasks = 1 then "" else "s")
                     st.Sched.st_edges st.Sched.st_wavefronts
                     st.Sched.st_max_width
                     (Sched.mode_string st.Sched.st_mode)
                     (if st.Sched.st_serialized then " (serialized)" else "")
                     st.Sched.st_domains
                     (if st.Sched.st_domains = 1 then "" else "s")
                     st.Sched.st_steals st.Sched.st_stalls;
                   let smp = Sched.smp ~cores:!cores plan res in
                   Format.printf
                     "  smp:   %d cores, makespan %.0f cycles, %.2f mflops@."
                     smp.Model.Smp.p_cores smp.Model.Smp.p_cycles
                     smp.Model.Smp.p_mflops);
                List.iter
                  (fun (machine, quality) ->
                    let r = Pipeline.consume ~machine ~quality recording in
                    Format.printf "  %-10s %-9s %-7s %a@." label
                      machine.Model.m_name quality.Model.q_name Model.pp_result
                      r)
                  variants
              in
              go "original" None;
              go "blocked" (Some s);
              0)))

let search_cmd =
  Cli.cmd "search"
    ~doc:
      "automatically derive a good shackle (Section 8): enumerate, filter by \
       legality, rank by Theorem 2 and simulated cycles" (fun args ->
      let prog = "shacklec search" in
      let kernel = ref None and size = ref 32 and n = ref 64 in
      Cli.run ~prog ~positional:(kernel_positional kernel)
        ~specs:[ size_flag size; n_flag n ] args (fun () ->
          with_kernel ~prog kernel (fun (name, p) ->
              match Experiments.Autotune.autotune p ~size:!size ~n:!n ~kernel:name with
              | None ->
                print_endline
                  "no legal candidate (a statement may need a dummy reference)";
                1
              | Some (best, cycles) ->
                Format.printf
                  "best candidate (%d factor%s, fully constrained: %b, %.0f \
                   simulated cycles at N=%d):@."
                  best.Shackle.Search.factors
                  (if best.Shackle.Search.factors = 1 then "" else "s")
                  best.Shackle.Search.fully_constrained cycles !n;
                Format.printf "%a@." Shackle.Spec.pp best.Shackle.Search.spec;
                print_endline "--- generated code ---";
                print_string
                  (Ast.program_to_string
                     (Pipeline.codegen (Pipeline.create p)
                        best.Shackle.Search.spec));
                0)))

let parse_cmd =
  Cli.cmd "parse"
    ~doc:
      "parse a program file (the pretty-printer's syntax), analyze it and \
       report" (fun args ->
      let prog = "shacklec parse" in
      let file = ref None and connect = ref None in
      let positional =
        ( "FILE",
          fun v ->
            match !file with
            | Some _ -> Error (Printf.sprintf "unexpected extra argument %S" v)
            | None ->
              file := Some v;
              Ok () )
      in
      Cli.run ~prog ~positional ~specs:[ Cli.connect connect ] args (fun () ->
          match !file with
          | None ->
            Printf.eprintf "%s: expects a FILE argument (try --help)\n" prog;
            2
          | Some file -> begin
            match !connect with
            | Some addr ->
              remote_rpc ~prog addr
                (Server.Proto.Parse { text = read_file file })
                (function
                  | Server.Proto.R_parsed { pretty; deps } ->
                    print_string pretty;
                    Printf.printf "\n%d dependences\n" deps;
                    0
                  | _ ->
                    Printf.eprintf "%s: unexpected reply\n" prog;
                    1)
            | None -> begin
              match Pipeline.parse (read_file file) with
              | Error msg ->
                Printf.eprintf "%s: %s\n" file msg;
                1
              | Ok pipe ->
                print_string (Ast.program_to_string (Pipeline.program pipe));
                let deps = Pipeline.deps pipe in
                Printf.printf "\n%d dependences:\n" (List.length deps);
                List.iter
                  (fun d -> Format.printf "  %a@." Dependence.Dep.pp d)
                  deps;
                0
            end
          end))

let tune_cmd =
  Cli.cmd "tune"
    ~doc:
      "cost-model-guided shackle autotuning: enumerate candidates, prune by \
       Theorem 2, check legality through the memoized solver, rank by \
       replayed simulation" (fun args ->
      let prog = "shacklec tune" in
      let kernel = ref None in
      let sizes = ref [] and n = ref 0 and bw = ref 8 and depth = ref 2 in
      let mode = ref "exhaustive" and beam_width = ref 4 in
      let arrays = ref [] and machines = ref [] and qualities = ref [] in
      let domains = ref 1 and quick = ref false and json = ref None in
      let no_cache = ref false and cache_compare = ref false in
      let shuffle_seed = ref 0 and check_json = ref None in
      let timeout_ms = ref None and fuel = ref None and connect = ref None in
      let budget_ms = ref None in
      let sweep_ns = ref [] and no_specialize = ref false in
      let prune_bounds = ref false and no_prune_bounds = ref false in
      let specs =
        [ Cli.int_list "--size" ~docv:"B"
            ~doc:"block size to enumerate (repeatable; default 16)" sizes;
          Cli.int "--n" ~docv:"N" ~doc:"problem size (default 64; 40 with --quick)" n;
          Cli.int_list "--sweep-n" ~docv:"N"
            ~doc:
              "evaluate candidates at this problem size (repeatable): \
               codegen and legality run once, each size re-instantiates \
               the cached program through the solver-free specializer, \
               and ranking sums cycles over the sweep"
            sweep_ns;
          Cli.flag "--no-specialize"
            ~doc:
              "evaluate symbolic programs instead of per-size specialized \
               ones (ranked quantities are identical; only wall-clock \
               changes)"
            no_specialize;
          bw_flag bw;
          Cli.int "--depth" ~docv:"D"
            ~doc:"maximum Cartesian-product factors (default 2)" depth;
          Cli.choice "--mode" ~docv:"MODE"
            ~doc:"search mode: exhaustive or beam (default exhaustive)"
            [ ("exhaustive", "exhaustive"); ("beam", "beam") ]
            mode;
          Cli.int "--beam-width" ~docv:"W"
            ~doc:"beam width per product level (with --mode beam; default 4)"
            beam_width;
          Cli.string_list "--array" ~docv:"A"
            ~doc:
              "restrict shackled arrays (repeatable; default: rank-2 arrays \
               referenced by every statement)"
            arrays;
          machine_flag machines; quality_flag qualities;
          Cli.domains domains; Cli.quick quick; Cli.json json;
          Cli.flag "--no-cache" ~doc:"disable the legality memo table" no_cache;
          Cli.flag "--cache-compare"
            ~doc:"run the cold/warm legality-cache effectiveness pass"
            cache_compare;
          Cli.int "--shuffle-seed" ~docv:"K"
            ~doc:"shuffle candidate order before evaluation (ranking-stability check)"
            shuffle_seed;
          Cli.flag "--prune-bounds"
            ~doc:
              "evaluate sequentially, best-first by the analytic \
               communication lower bound, skipping candidates whose \
               lower-bounded cycle cost exceeds the incumbent's simulated \
               cycles (same winner, less simulation)"
            prune_bounds;
          Cli.flag "--no-prune-bounds"
            ~doc:"force the default exhaustive evaluation (overrides --prune-bounds)"
            no_prune_bounds;
          Cli.timeout_ms timeout_ms; Cli.fuel fuel; Cli.connect connect;
          Cli.budget_ms budget_ms;
          Cli.string_opt "--check-json" ~docv:"FILE"
            ~doc:"validate a previously written tune report and exit" check_json ]
      in
      Cli.run ~prog ~positional:(kernel_positional kernel) ~specs args (fun () ->
          match !check_json with
          | Some file -> begin
            match Json.of_string (read_file file) with
            | Error msg ->
              Printf.eprintf "%s: %s: invalid JSON: %s\n" prog file msg;
              1
            | Ok j -> begin
              match Tune.check_report_json j with
              | Ok () ->
                Printf.printf "%s: valid %s\n" file Tune.schema;
                0
              | Error msg ->
                Printf.eprintf "%s: %s: %s\n" prog file msg;
                1
            end
          end
          | None ->
            with_kernel ~prog kernel (fun ((name, p) as k) ->
                let sizes =
                  match !sizes with
                  | [] -> if !quick then [ 8 ] else [ 16 ]
                  | ss -> ss
                in
                let n = if !n > 0 then !n else if !quick then 40 else 64 in
                match !connect with
                | Some addr ->
                  remote_rpc ~prog addr
                    (Server.Proto.Tune
                       { kernel = name; size = List.hd sizes; n;
                         budget_ms = !budget_ms })
                    (function
                      | Server.Proto.R_tuned { label; cycles; candidates } ->
                        Printf.printf
                          "best of %d candidates: %s (%.0f cycles at N=%d)\n"
                          candidates label cycles n;
                        0
                      | _ ->
                        Printf.eprintf "%s: unexpected reply\n" prog;
                        1)
                | None ->
                let options =
                  { Tune.sizes;
                    depth = !depth;
                    mode =
                      (if String.equal !mode "beam" then Tune.Beam !beam_width
                       else Tune.Exhaustive);
                    domains = !domains;
                    machines =
                      (match !machines with [] -> [ Model.sp2_like ] | ms -> ms);
                    qualities =
                      (match !qualities with [] -> [ Model.untuned ] | qs -> qs);
                    cache = not !no_cache;
                    cache_compare = !cache_compare;
                    shuffle_seed =
                      (if !shuffle_seed > 0 then Some !shuffle_seed else None);
                    timeout_ms = !timeout_ms;
                    fuel = !fuel;
                    ns = List.sort_uniq compare !sweep_ns;
                    specialize = not !no_specialize;
                    prune_bounds = !prune_bounds && not !no_prune_bounds }
                in
                let rp =
                  Tune.tune ~options
                    ?arrays:(match !arrays with [] -> None | a -> Some a)
                    ~init:(init_of k ~n ~bw:!bw) ~kernel:name
                    ~params:(params_of k ~n ~bw:!bw)
                    p
                in
                Format.printf "%a@." Tune.pp_report rp;
                (match !json with
                | Some file ->
                  write_file file
                    (Json.to_string ~pretty:true (Tune.report_to_json rp) ^ "\n")
                | None -> ());
                (match Tune.best rp with
                | Some _ -> 0
                | None ->
                  prerr_endline
                    "no legal candidate (a statement may need a dummy reference)";
                  1))))

let () =
  exit
    (Cli.dispatch ~prog:"shacklec"
       ~doc:"data-centric multi-level blocking (PLDI 1997) compiler driver"
       ~version:"1.0"
       [ list_cmd; show_cmd; block_cmd; legal_cmd; choices_cmd; verify_cmd;
         bounds_cmd; sim_cmd; search_cmd; tune_cmd; parse_cmd ]
       Sys.argv)
