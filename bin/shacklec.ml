(* shacklec: a command-line driver for the data-shackling compiler.

     shacklec list
     shacklec show cholesky_right
     shacklec block matmul --spec c --size 25        (print blocked code)
     shacklec block matmul --spec c --size 25 --naive
     shacklec legal cholesky_right --spec write --size 64
     shacklec choices cholesky_right                 (all shackles + verdicts)
     shacklec verify matmul --spec ca --size 16 -n 40
     shacklec sim cholesky_right --spec full --size 32 -n 120 [--tuned]

   Specs per kernel (see Experiments.Specs):
     matmul:           c | ca | two-level
     cholesky_right:   write | read | full | left
     cholesky_banded:  write
     qr:               columns
     gmtry:            write
     adi:              fused                                               *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Specs = Experiments.Specs
module Legality = Shackle.Legality
module Tighten = Codegen.Tighten
module Model = Machine.Model

open Cmdliner

let kernel_conv =
  let parse s =
    match List.assoc_opt s (K.all ()) with
    | Some p -> Ok (s, p)
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown kernel %s (try: %s)" s
              (String.concat ", " (List.map fst (K.all ())))))
  in
  Arg.conv (parse, fun fmt (s, _) -> Format.pp_print_string fmt s)

let kernel_arg =
  Arg.(required & pos 0 (some kernel_conv) None & info [] ~docv:"KERNEL")

let spec_arg =
  Arg.(value & opt string "default" & info [ "spec" ] ~docv:"SPEC"
         ~doc:"Which shackle to use (kernel-specific; see --help).")

let size_arg =
  Arg.(value & opt int 32 & info [ "size" ] ~docv:"B" ~doc:"Block size.")

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Problem size.")

let bw_arg =
  Arg.(value & opt int 8 & info [ "bw" ] ~docv:"BW" ~doc:"Bandwidth (banded kernels).")

let naive_flag =
  Arg.(value & flag & info [ "naive" ] ~doc:"Print the naive (Figure 5) form.")

let tuned_flag =
  Arg.(value & flag & info [ "tuned" ] ~doc:"Simulate with hand-tuned inner-loop quality.")

let machine_arg =
  let machine_conv = Arg.enum [ ("sp2-like", Model.sp2_like); ("two-level", Model.two_level) ] in
  Arg.(value & opt_all machine_conv [] & info [ "machine" ] ~docv:"MACHINE"
         ~doc:"Machine model to simulate (sp2-like or two-level). Repeatable; \
               every (machine, quality) variant replays the same recorded \
               trace, so the kernel is interpreted only once per program.")

let quality_arg =
  let quality_conv = Arg.enum [ ("untuned", Model.untuned); ("tuned", Model.tuned) ] in
  Arg.(value & opt_all quality_conv [] & info [ "quality" ] ~docv:"QUALITY"
         ~doc:"Inner-loop code quality (untuned or tuned). Repeatable; \
               overrides --tuned when given.")

let spec_of (name, _p) spec ~size =
  match (name, spec) with
  | "matmul", ("c" | "default") -> Specs.matmul_c ~size
  | "matmul", "ca" -> Specs.matmul_ca ~size
  | "matmul", "two-level" -> Specs.matmul_two_level ~outer:size ~inner:(max 2 (size / 8))
  | ("cholesky_right" | "cholesky_left"), ("write" | "default") ->
    Specs.cholesky_write ~size
  | ("cholesky_right" | "cholesky_left"), "read" -> Specs.cholesky_read ~size
  | ("cholesky_right" | "cholesky_left"), "full" ->
    Specs.cholesky_fully_blocked ~size
  | ("cholesky_right" | "cholesky_left"), "left" ->
    Specs.cholesky_left_looking_blocked ~size
  | "cholesky_banded", ("write" | "default") -> Specs.cholesky_banded_write ~size
  | "qr", ("columns" | "default") -> Specs.qr_columns ~width:size
  | "gmtry", ("write" | "default") -> Specs.gmtry_write ~size
  | "adi", ("fused" | "default") -> Specs.adi_fused ()
  | _ -> failwith (Printf.sprintf "no spec %s for kernel %s" spec name)

let params_of (name, _) ~n ~bw =
  if String.equal name "cholesky_banded" then [ ("N", n); ("BW", bw) ]
  else [ ("N", n) ]

let init_of (name, _) ~n ~bw =
  let base = Kernels.Inits.for_kernel name ~n in
  if String.equal name "cholesky_banded" then fun a idx ->
    if abs (idx.(0) - idx.(1)) > bw then 0.0 else base a idx
  else base

let list_cmd =
  let doc = "List the available kernels." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter (fun (n, _) -> print_endline n) (K.all ());
          0)
      $ const ())

let show_cmd =
  let doc = "Print a kernel's source program." in
  let run (_, p) =
    print_string (Ast.program_to_string p);
    0
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ kernel_arg)

let block_cmd =
  let doc = "Shackle a kernel and print the generated blocked code." in
  let run k spec size naive =
    let s = spec_of k spec ~size in
    let _, p = k in
    let g =
      if naive then Codegen.Naive.generate p s else Tighten.generate p s
    in
    print_string (Ast.program_to_string g);
    0
  in
  Cmd.v (Cmd.info "block" ~doc)
    Term.(const run $ kernel_arg $ spec_arg $ size_arg $ naive_flag)

let legal_cmd =
  let doc = "Run the Theorem 1 legality test." in
  let run k spec size =
    let _, p = k in
    match Legality.check p (spec_of k spec ~size) with
    | Legality.Legal ->
      print_endline "legal";
      0
    | Legality.Illegal vs ->
      Format.printf "%a@." Legality.pp_verdict (Legality.Illegal vs);
      1
  in
  Cmd.v (Cmd.info "legal" ~doc ~exits:Cmd.Exit.defaults)
    Term.(const run $ kernel_arg $ spec_arg $ size_arg)

let choices_cmd =
  let doc = "Enumerate all single-factor shackles of the kernel's main array and test each." in
  let run (name, p) size =
    let array =
      match (List.hd p.Ast.arrays).Ast.a_name with a -> a
    in
    List.iter
      (fun choices ->
        let spec =
          [ Shackle.Spec.factor (Shackle.Blocking.blocks_2d ~array ~size) choices ]
        in
        let label =
          String.concat "; "
            (List.map
               (fun (l, r) ->
                 Printf.sprintf "%s:%s" l
                   (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
               choices)
        in
        Printf.printf "%-60s %s\n" label
          (if Legality.is_legal p spec then "legal" else "ILLEGAL"))
      (Legality.enumerate_choices p ~array);
    ignore name;
    0
  in
  Cmd.v (Cmd.info "choices" ~doc) Term.(const run $ kernel_arg $ size_arg)

let verify_cmd =
  let doc = "Generate blocked code and check it computes the same values as the original." in
  let run k spec size n bw =
    let _, p = k in
    let s = spec_of k spec ~size in
    let g = Tighten.generate p s in
    let diff =
      Exec.Verify.max_diff p g ~params:(params_of k ~n ~bw)
        ~init:(init_of k ~n ~bw)
    in
    Printf.printf "max |difference| = %g\n" diff;
    if diff <= 1e-9 then 0 else 1
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ kernel_arg $ spec_arg $ size_arg $ n_arg $ bw_arg)

let sim_cmd =
  let doc =
    "Simulate original and blocked code and report both. Each program is \
     interpreted exactly once; its recorded access trace is replayed against \
     every requested (machine, quality) variant."
  in
  let run k spec size n bw tuned machines qualities =
    let _, p = k in
    let s = spec_of k spec ~size in
    let g = Tighten.generate p s in
    let machines = match machines with [] -> [ Model.sp2_like ] | ms -> ms in
    let qualities =
      match qualities with
      | [] -> [ (if tuned then Model.tuned else Model.untuned) ]
      | qs -> qs
    in
    let variants =
      List.concat_map (fun m -> List.map (fun q -> (m, q)) qualities) machines
    in
    let go label prog =
      let recording = Model.record prog ~params:(params_of k ~n ~bw) ~init:(init_of k ~n ~bw) in
      let tr = recording.Model.rec_trace in
      Format.printf "%s: recorded %d accesses (%d chunks, %d KB)@." label
        (Trace.length tr) (Trace.num_chunks tr) (Trace.bytes tr / 1024);
      List.iter
        (fun (machine, quality) ->
          let r = Model.consume ~machine ~quality recording in
          Format.printf "  %-10s %-9s %-7s %a@." label machine.Model.m_name
            quality.Model.q_name Model.pp_result r)
        variants
    in
    go "original" p;
    go "blocked" g;
    0
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(const run $ kernel_arg $ spec_arg $ size_arg $ n_arg $ bw_arg
          $ tuned_flag $ machine_arg $ quality_arg)

let search_cmd =
  let doc = "Automatically derive a good shackle (Section 8): enumerate, filter by legality, rank by Theorem 2 and simulated cycles." in
  let run (name, p) size n =
    match Experiments.Autotune.autotune p ~size ~n ~kernel:name with
    | None ->
      print_endline "no legal candidate (a statement may need a dummy reference)";
      1
    | Some (best, cycles) ->
      Format.printf "best candidate (%d factor%s, fully constrained: %b, %.0f simulated cycles at N=%d):@."
        best.Shackle.Search.factors
        (if best.Shackle.Search.factors = 1 then "" else "s")
        best.Shackle.Search.fully_constrained cycles n;
      Format.printf "%a@." Shackle.Spec.pp best.Shackle.Search.spec;
      print_endline "--- generated code ---";
      print_string
        (Ast.program_to_string (Tighten.generate p best.Shackle.Search.spec));
      0
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(const run $ kernel_arg $ size_arg $ n_arg)

let parse_cmd =
  let doc = "Parse a program file (the pretty-printer's syntax), analyze it and report." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Loopir.Parser.program text with
    | exception Loopir.Parser.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      1
    | p ->
      print_string (Ast.program_to_string p);
      let deps = Dependence.Dep.analyze p in
      Printf.printf "\n%d dependences:\n" (List.length deps);
      List.iter (fun d -> Format.printf "  %a@." Dependence.Dep.pp d) deps;
      0
  in
  Cmd.v (Cmd.info "parse" ~doc) Term.(const run $ file_arg)

let () =
  let doc = "data-centric multi-level blocking (PLDI 1997) compiler driver" in
  let info = Cmd.info "shacklec" ~doc ~version:"1.0" in
  exit
    (Cmd.eval' (Cmd.group info
                  [ list_cmd; show_cmd; block_cmd; legal_cmd; choices_cmd;
                    verify_cmd; sim_cmd; parse_cmd; search_cmd ]))
