(* shackled: the shackle compiler as a long-running daemon.

     shackled serve --socket /tmp/shackled.sock --cache-dir CACHE \
                    [--domains D] [--fuel F] [--timeout-ms MS]
     shackled report --socket /tmp/shackled.sock        (stats RPC)
     shackled report --cache-dir CACHE                  (offline cache summary)
     shackled burst --socket /tmp/shackled.sock --frames N --seed K
     shackled stop --socket /tmp/shackled.sock

   The daemon answers shackled/1 wire-protocol requests (see
   lib/server/wire.mli) over a Unix domain socket, shares one memoizing
   solver context across all clients, and — with --cache-dir — persists
   every legality verdict to an append-only disk cache that survives
   kill -9 and is shared across restarts. *)

module Json = Observe.Json
module K = Kernels.Builders
module Specs = Experiments.Specs

let resolver () =
  { Server.Daemon.rv_kernels = (fun () -> K.all ());
    rv_spec = (fun ~kernel ~spec ~size -> Specs.lookup ~kernel ~spec ~size);
    rv_params =
      (fun ~kernel ~n ->
        (* banded kernels need a bandwidth; a third of the problem keeps
           the banded structure visible at daemon-default sizes *)
        if String.equal kernel "cholesky_banded" then
          [ ("N", n); ("BW", max 1 (n / 3)) ]
        else [ ("N", n) ]);
    rv_init = (fun ~kernel ~n -> Kernels.Inits.for_kernel kernel ~n) }

(* ------------------------------------------------------------------ *)
(* Pidfile / stale-socket handling                                     *)
(* ------------------------------------------------------------------ *)

let pidfile socket = socket ^ ".pid"

let read_pid socket =
  match open_in (pidfile socket) with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> int_of_string_opt (String.trim (input_line ic)))
    |> fun p -> (match p with exception End_of_file -> None | p -> p)

(* A zombie answers kill(pid, 0), but it will never accept connections —
   treat it as dead so a crashed daemon's socket can be reclaimed. *)
let pid_zombie pid =
  match open_in (Printf.sprintf "/proc/%d/stat" pid) with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> false
        | line -> (
          (* "pid (comm) state ..." — comm may contain spaces/parens, so
             find the state after the LAST ')' *)
          match String.rindex_opt line ')' with
          | Some i when i + 2 < String.length line ->
            Char.equal line.[i + 2] 'Z'
          | _ -> false))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> not (pid_zombie pid)
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, not ours *)

(* A socket file with no live owner (the previous daemon was killed -9)
   must not block a restart; a live owner must. *)
let claim_socket socket =
  if Sys.file_exists socket then begin
    match read_pid socket with
    | Some pid when pid_alive pid ->
      failwith
        (Printf.sprintf "socket %s is owned by live pid %d" socket pid)
    | _ ->
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (pidfile socket) with Unix.Unix_error _ -> ()
  end;
  let oc = open_out (pidfile socket) in
  output_string oc (string_of_int (Unix.getpid ()));
  output_char oc '\n';
  close_out oc

let release_socket socket =
  try Unix.unlink (pidfile socket) with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let serve_cmd args =
  let socket = ref Cli.default_socket in
  let cache_dir = ref None in
  let domains = ref 1 in
  let fuel = ref None in
  let timeout_ms = ref None in
  let specs =
    [ Cli.socket socket; Cli.cache_dir cache_dir; Cli.domains domains;
      Cli.fuel fuel; Cli.timeout_ms timeout_ms ]
  in
  Cli.run ~prog:"shackled serve" ~specs args (fun () ->
      claim_socket !socket;
      let cache = Option.map Server.Diskcache.open_dir !cache_dir in
      let config =
        { Server.Daemon.default_config with
          Server.Daemon.cfg_domains = !domains;
          cfg_fuel = !fuel;
          cfg_timeout_ms = !timeout_ms }
      in
      let t = Server.Daemon.create ?cache ~config (resolver ()) in
      (match cache with
      | Some dc ->
        Printf.printf
          "shackled: listening on %s (cache %s: %d entries, %d torn bytes \
           dropped)\n%!"
          !socket
          (Server.Diskcache.file dc)
          (Server.Diskcache.entries dc)
          (Server.Diskcache.dropped_bytes dc)
      | None -> Printf.printf "shackled: listening on %s (no cache)\n%!" !socket);
      Fun.protect
        ~finally:(fun () ->
          Option.iter Server.Diskcache.close cache;
          release_socket !socket)
        (fun () -> Server.Daemon.serve t ~socket:!socket);
      0)

let rpc_or_die socket req =
  let c = Server.Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      match Server.Client.rpc c req with
      | Ok r -> r
      | Error e -> failwith (Printf.sprintf "%s: %s" e.Server.Proto.e_code e.e_message))

let report_cmd args =
  let socket = ref "" in
  let cache_dir = ref None in
  let specs =
    [ Cli.arg1 "--socket" ~docv:"PATH"
        ~doc:"query a live daemon's stats RPC"
        (fun v -> socket := v; Ok ());
      Cli.cache_dir cache_dir ]
  in
  Cli.run ~prog:"shackled report" ~specs args (fun () ->
      if not (String.equal !socket "") then begin
        match rpc_or_die !socket Server.Proto.Stats with
        | Server.Proto.R_stats j ->
          print_endline (Json.to_string j);
          0
        | _ ->
          prerr_endline "shackled report: unexpected reply";
          1
      end
      else
        match !cache_dir with
        | None ->
          prerr_endline "shackled report: need --socket or --cache-dir";
          2
        | Some dir ->
          let dc = Server.Diskcache.open_dir dir in
          let j =
            Json.Obj
              [ ("schema", Json.Str "shackled-cache-report/1");
                ("file", Json.Str (Server.Diskcache.file dc));
                ("entries", Json.Int (Server.Diskcache.entries dc));
                ("bytes", Json.Int (Server.Diskcache.bytes_on_disk dc));
                ( "dropped_bytes",
                  Json.Int (Server.Diskcache.dropped_bytes dc) ) ]
          in
          Server.Diskcache.close dc;
          print_endline (Json.to_string j);
          0)

let burst_cmd args =
  let socket = ref Cli.default_socket in
  let frames = ref 100 in
  let seed = ref 1 in
  let specs =
    [ Cli.socket socket;
      Cli.int "--frames" ~docv:"N" ~doc:"mutated frames to fire (default 100)"
        frames;
      Cli.seed seed ]
  in
  Cli.run ~prog:"shackled burst" ~specs args (fun () ->
      let b =
        Server.Client.fuzz_burst ~socket:!socket ~seed:!seed ~frames:!frames
      in
      Printf.printf
        "shackled burst: sent %d, ok %d, structured errors %d, hangups %d — \
         daemon healthy\n"
        b.Server.Client.b_sent b.b_ok b.b_err b.b_hangups;
      0)

let stop_cmd args =
  let socket = ref Cli.default_socket in
  Cli.run ~prog:"shackled stop" ~specs:[ Cli.socket socket ] args (fun () ->
      match rpc_or_die !socket Server.Proto.Shutdown with
      | Server.Proto.R_bye ->
        print_endline "shackled: bye";
        0
      | _ ->
        prerr_endline "shackled stop: unexpected reply";
        1)

let () =
  exit
    (Cli.dispatch ~prog:"shackled" ~doc:"the shackle compiler as a daemon"
       ~version:"shackled/1"
       [ Cli.cmd "serve" ~doc:"run the daemon (blocks)" serve_cmd;
         Cli.cmd "report" ~doc:"print daemon stats or an offline cache summary"
           report_cmd;
         Cli.cmd "burst" ~doc:"fire a wire-protocol fuzz burst at a live daemon"
           burst_cmd;
         Cli.cmd "stop" ~doc:"ask the daemon to shut down" stop_cmd ]
       Sys.argv)
