(* shackled: the shackle compiler as a long-running daemon.

     shackled serve --socket /tmp/shackled.sock --cache-dir CACHE \
                    [--domains D] [--fuel F] [--timeout-ms MS]
     shackled report --socket /tmp/shackled.sock        (stats RPC)
     shackled report --cache-dir CACHE                  (offline cache summary)
     shackled burst --socket /tmp/shackled.sock --frames N --seed K
     shackled replay --cache-dir CACHE [--clients N] [--kill] [--json F]
     shackled compact --cache-dir CACHE
     shackled check-json FILE
     shackled stop --socket /tmp/shackled.sock

   The daemon answers shackled/1 wire-protocol requests (see
   lib/server/wire.mli) over a Unix domain socket, shares one memoizing
   solver context across all clients, and — with --cache-dir — persists
   every legality verdict to an append-only disk cache that survives
   kill -9 and is shared across restarts. *)

module Json = Observe.Json
module K = Kernels.Builders
module Specs = Experiments.Specs

let resolver () =
  { Server.Daemon.rv_kernels = (fun () -> K.all ());
    rv_spec = (fun ~kernel ~spec ~size -> Specs.lookup ~kernel ~spec ~size);
    rv_params =
      (fun ~kernel ~n ->
        (* banded kernels need a bandwidth; a third of the problem keeps
           the banded structure visible at daemon-default sizes *)
        if String.equal kernel "cholesky_banded" then
          [ ("N", n); ("BW", max 1 (n / 3)) ]
        else [ ("N", n) ]);
    rv_init = (fun ~kernel ~n -> Kernels.Inits.for_kernel kernel ~n) }

(* ------------------------------------------------------------------ *)
(* Pidfile / stale-socket handling                                     *)
(* ------------------------------------------------------------------ *)

let pidfile socket = socket ^ ".pid"

let read_pid socket =
  match open_in (pidfile socket) with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> int_of_string_opt (String.trim (input_line ic)))
    |> fun p -> (match p with exception End_of_file -> None | p -> p)

(* A zombie answers kill(pid, 0), but it will never accept connections —
   treat it as dead so a crashed daemon's socket can be reclaimed. *)
let pid_zombie pid =
  match open_in (Printf.sprintf "/proc/%d/stat" pid) with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> false
        | line -> (
          (* "pid (comm) state ..." — comm may contain spaces/parens, so
             find the state after the LAST ')' *)
          match String.rindex_opt line ')' with
          | Some i when i + 2 < String.length line ->
            Char.equal line.[i + 2] 'Z'
          | _ -> false))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> not (pid_zombie pid)
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, not ours *)

(* A socket file with no live owner (the previous daemon was killed -9)
   must not block a restart; a live owner must. *)
let claim_socket socket =
  if Sys.file_exists socket then begin
    match read_pid socket with
    | Some pid when pid_alive pid ->
      failwith
        (Printf.sprintf "socket %s is owned by live pid %d" socket pid)
    | _ ->
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      try Unix.unlink (pidfile socket) with Unix.Unix_error _ -> ()
  end;
  let oc = open_out (pidfile socket) in
  output_string oc (string_of_int (Unix.getpid ()));
  output_char oc '\n';
  close_out oc

let release_socket socket =
  try Unix.unlink (pidfile socket) with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let serve_cmd args =
  let socket = ref Cli.default_socket in
  let cache_dir = ref None in
  let domains = ref 1 in
  let fuel = ref None in
  let timeout_ms = ref None in
  let specs =
    [ Cli.socket socket; Cli.cache_dir cache_dir; Cli.domains domains;
      Cli.fuel fuel; Cli.timeout_ms timeout_ms ]
  in
  Cli.run ~prog:"shackled serve" ~specs args (fun () ->
      claim_socket !socket;
      let cache = Option.map Server.Diskcache.open_dir !cache_dir in
      let config =
        { Server.Daemon.default_config with
          Server.Daemon.cfg_domains = !domains;
          cfg_fuel = !fuel;
          cfg_timeout_ms = !timeout_ms }
      in
      let t = Server.Daemon.create ?cache ~config (resolver ()) in
      (match cache with
      | Some dc ->
        Printf.printf
          "shackled: listening on %s (cache %s: %d entries, %d torn bytes \
           dropped)\n%!"
          !socket
          (Server.Diskcache.file dc)
          (Server.Diskcache.entries dc)
          (Server.Diskcache.dropped_bytes dc)
      | None -> Printf.printf "shackled: listening on %s (no cache)\n%!" !socket);
      Fun.protect
        ~finally:(fun () ->
          Option.iter Server.Diskcache.close cache;
          release_socket !socket)
        (fun () -> Server.Daemon.serve t ~socket:!socket);
      0)

let rpc_or_die socket req =
  let c = Server.Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      match Server.Client.rpc c req with
      | Ok r -> r
      | Error e -> failwith (Printf.sprintf "%s: %s" e.Server.Proto.e_code e.e_message))

let report_cmd args =
  let socket = ref "" in
  let cache_dir = ref None in
  let specs =
    [ Cli.arg1 "--socket" ~docv:"PATH"
        ~doc:"query a live daemon's stats RPC"
        (fun v -> socket := v; Ok ());
      Cli.cache_dir cache_dir ]
  in
  Cli.run ~prog:"shackled report" ~specs args (fun () ->
      if not (String.equal !socket "") then begin
        match rpc_or_die !socket Server.Proto.Stats with
        | Server.Proto.R_stats j ->
          print_endline (Json.to_string j);
          0
        | _ ->
          prerr_endline "shackled report: unexpected reply";
          1
      end
      else
        match !cache_dir with
        | None ->
          prerr_endline "shackled report: need --socket or --cache-dir";
          2
        | Some dir ->
          let dc = Server.Diskcache.open_dir dir in
          let j =
            Json.Obj
              [ ("schema", Json.Str "shackled-cache-report/1");
                ("file", Json.Str (Server.Diskcache.file dc));
                ("entries", Json.Int (Server.Diskcache.entries dc));
                ("bytes", Json.Int (Server.Diskcache.bytes_on_disk dc));
                ( "dropped_bytes",
                  Json.Int (Server.Diskcache.dropped_bytes dc) ) ]
          in
          Server.Diskcache.close dc;
          print_endline (Json.to_string j);
          0)

let burst_cmd args =
  let socket = ref Cli.default_socket in
  let frames = ref 100 in
  let seed = ref 1 in
  let specs =
    [ Cli.socket socket;
      Cli.int "--frames" ~docv:"N" ~doc:"mutated frames to fire (default 100)"
        frames;
      Cli.seed seed ]
  in
  Cli.run ~prog:"shackled burst" ~specs args (fun () ->
      let b =
        Server.Client.fuzz_burst ~socket:!socket ~seed:!seed ~frames:!frames
      in
      Printf.printf
        "shackled burst: sent %d, ok %d, structured errors %d, hangups %d — \
         daemon healthy\n"
        b.Server.Client.b_sent b.b_ok b.b_err b.b_hangups;
      0)

(* ------------------------------------------------------------------ *)
(* compact: offline cache maintenance                                  *)
(* ------------------------------------------------------------------ *)

let compact_cmd args =
  let cache_dir = ref None in
  Cli.run ~prog:"shackled compact" ~specs:[ Cli.cache_dir cache_dir ] args
    (fun () ->
      match !cache_dir with
      | None ->
        prerr_endline "shackled compact: need --cache-dir";
        2
      | Some dir ->
        let dc = Server.Diskcache.open_dir dir in
        let before, after = Server.Diskcache.compact dc in
        Printf.printf
          "shackled compact: %s: %d entries, %d -> %d bytes (%d quarantined \
           bytes in %d spans)\n"
          (Server.Diskcache.file dc)
          (Server.Diskcache.entries dc)
          before after
          (Server.Diskcache.quarantined_bytes dc)
          (Server.Diskcache.quarantined_spans dc);
        Server.Diskcache.close dc;
        0)

(* ------------------------------------------------------------------ *)
(* check-json: validate any registry report                            *)
(* ------------------------------------------------------------------ *)

(* Same exit discipline as `shacklec tune --check-json`, `bench
   --check-json` and `fuzz --check-json` (0 valid, 1 invalid or
   unreadable), but family-agnostic: the daemon's tools emit three
   schemas (shackled-stats, shackled-cache-report, server-load-report)
   and the registry dispatches on the tag. *)
let check_json_cmd args =
  match args with
  | [ file ] ->
    if not (Sys.file_exists file) then begin
      Printf.eprintf "shackled: %s: no such file\n" file;
      1
    end
    else begin
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      match Json.of_string raw with
      | Error msg ->
        Printf.eprintf "shackled: %s: %s\n" file msg;
        1
      | Ok j -> (
        match Report.check j with
        | Ok tag ->
          Printf.printf "shackled: %s: valid %s\n" file tag;
          0
        | Error msg ->
          Printf.eprintf "shackled: %s: %s\n" file msg;
          1)
    end
  | _ ->
    prerr_endline "usage: shackled check-json FILE";
    2

(* ------------------------------------------------------------------ *)
(* replay: multi-client chaos/load harness                             *)
(* ------------------------------------------------------------------ *)

(* The harness owns its daemon as a child process, so SIGKILL mid-load
   is the real thing: the kernel tears the socket down, clients see
   resets, and the restart replays the disk cache from the same
   directory. *)

let spawn_daemon ~socket ~cache_dir ~domains =
  let exe = Sys.executable_name in
  let args =
    [ exe; "serve"; "--socket"; socket; "--domains"; string_of_int domains ]
    @ match cache_dir with Some d -> [ "--cache-dir"; d ] | None -> []
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list args) devnull devnull devnull
  in
  Unix.close devnull;
  let rec wait n =
    if n = 0 then failwith "daemon did not come up";
    match Server.Client.connect socket with
    | c -> Server.Client.close c
    | exception Unix.Unix_error _ ->
      Unix.sleepf 0.02;
      wait (n - 1)
  in
  wait 500;
  pid

let kill9_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let stop_daemon ~socket pid =
  (match Server.Client.connect socket with
  | c ->
    ignore (Server.Client.rpc c Server.Proto.Shutdown);
    Server.Client.close c
  | exception Unix.Unix_error _ -> ());
  let rec wait n =
    if n = 0 then kill9_daemon pid
    else
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        Unix.sleepf 0.02;
        wait (n - 1)
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
  in
  wait 250

(* Cheap requests only (the production mix): the harness measures
   overload behavior, not solver throughput.  One unknown-kernel entry
   keeps the structured-error path hot. *)
let replay_pool ~budget_ms =
  let module P = Server.Proto in
  [ P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms };
    P.Legal { kernel = "matmul"; spec = "ca"; size = 8; budget_ms };
    P.Probe { kernel = "matmul"; spec = "c"; size = 8; budget_ms };
    P.Probe { kernel = "cholesky_right"; spec = "write"; size = 6; budget_ms };
    P.Legal { kernel = "cholesky_right"; spec = "write"; size = 6; budget_ms };
    P.Legal { kernel = "nope"; spec = "c"; size = 8; budget_ms };
    P.Stats ]

let replay_cmd args =
  let socket = ref Cli.default_socket in
  let cache_dir = ref None in
  let clients = ref 4 and requests = ref 120 and seed = ref 1 in
  let domains = ref 2 in
  let kill = ref false and no_chaos = ref false and no_warm = ref false in
  let kill_after_ms = ref 400 in
  let budget_ms = ref None in
  let json = ref None in
  let trace_out = ref None and trace_in = ref None in
  let specs =
    [ Cli.socket socket; Cli.cache_dir cache_dir;
      Cli.int "--clients" ~docv:"N"
        ~doc:"concurrent replay clients (default 4)" clients;
      Cli.int "--requests" ~docv:"N"
        ~doc:"trace length per phase (default 120)" requests;
      Cli.seed seed; Cli.domains domains;
      Cli.flag "--kill"
        ~doc:"SIGKILL the daemon mid-load and restart it on the same cache"
        kill;
      Cli.int "--kill-after-ms" ~docv:"MS"
        ~doc:"when --kill: fire the SIGKILL this long into the cold phase \
              (default 400)"
        kill_after_ms;
      Cli.flag "--no-chaos"
        ~doc:"disable the fault-injecting proxy (clean transport)" no_chaos;
      Cli.flag "--no-warm"
        ~doc:"skip the warm-restart phase (cold phase only)" no_warm;
      Cli.budget_ms budget_ms; Cli.json json;
      Cli.string_opt "--trace" ~docv:"FILE"
        ~doc:"record the generated trace as JSONL" trace_out;
      Cli.string_opt "--replay-trace" ~docv:"FILE"
        ~doc:"drive a previously recorded trace instead of generating one"
        trace_in ]
  in
  Cli.run ~prog:"shackled replay" ~specs args (fun () ->
      let module R = Server.Replay in
      let trace =
        match !trace_in with
        | Some file -> (
          match R.load_trace file with
          | Ok t -> t
          | Error msg -> failwith msg)
        | None ->
          R.gen_trace ~seed:!seed ~clients:!clients ~requests:!requests
            ~pool:(replay_pool ~budget_ms:!budget_ms)
      in
      Option.iter (fun file -> R.save_trace file trace) trace_out.contents;
      let upstream = !socket in
      let proxy_sock = !socket ^ ".chaos" in
      let chaos_cfg = if !no_chaos then R.no_chaos else R.default_chaos in
      let stats = Server.Stats.create () in
      let daemon = ref (spawn_daemon ~socket:upstream ~cache_dir:!cache_dir ~domains:!domains) in
      let proxy =
        R.proxy_start ~upstream ~socket:proxy_sock ~seed:!seed ~chaos:chaos_cfg
      in
      let snapshot () =
        match Server.Client.connect upstream with
        | exception Unix.Unix_error _ -> None
        | c ->
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              match Server.Client.rpc c Server.Proto.Stats with
              | Ok (Server.Proto.R_stats j) -> Some j
              | _ -> None)
      in
      Fun.protect
        ~finally:(fun () ->
          R.proxy_stop proxy;
          kill9_daemon !daemon)
        (fun () ->
          (* cold phase, optionally interrupted by a SIGKILL + restart *)
          let killer =
            if not !kill then None
            else
              Some
                (Thread.create
                   (fun () ->
                     Thread.delay (float_of_int !kill_after_ms /. 1000.0);
                     kill9_daemon !daemon;
                     daemon :=
                       spawn_daemon ~socket:upstream ~cache_dir:!cache_dir
                         ~domains:!domains)
                   ())
          in
          let t0 = Unix.gettimeofday () in
          let cold_out =
            R.drive ~stats ~socket:proxy_sock ~seed:!seed ~clients:!clients
              trace
          in
          Option.iter Thread.join killer;
          let cold_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let cold =
            Option.bind (snapshot ()) (R.phase_of_stats ~duration_ms:cold_ms)
          in
          (* warm phase: a fresh daemon process on the same cache dir
             replays the identical trace *)
          let warm_out, warm =
            if !no_warm then (None, None)
            else begin
              stop_daemon ~socket:upstream !daemon;
              daemon :=
                spawn_daemon ~socket:upstream ~cache_dir:!cache_dir
                  ~domains:!domains;
              let t1 = Unix.gettimeofday () in
              let out =
                R.drive ~stats ~socket:proxy_sock ~seed:(!seed + 1)
                  ~clients:!clients trace
              in
              let warm_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
              ( Some out,
                Option.bind (snapshot ())
                  (R.phase_of_stats ~duration_ms:warm_ms) )
            end
          in
          stop_daemon ~socket:upstream !daemon;
          let add f = f cold_out + match warm_out with Some o -> f o | None -> 0 in
          let merged_errors =
            let tbl = Hashtbl.create 8 in
            let add_all o =
              List.iter
                (fun (c, n) ->
                  match Hashtbl.find_opt tbl c with
                  | Some r -> r := !r + n
                  | None -> Hashtbl.add tbl c (ref n))
                o.R.o_errors
            in
            add_all cold_out;
            Option.iter add_all warm_out;
            Hashtbl.fold (fun c n acc -> (c, !n) :: acc) tbl []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          let outcome =
            { R.o_completed = add (fun o -> o.R.o_completed);
              o_retries = add (fun o -> o.R.o_retries);
              o_shed = add (fun o -> o.R.o_shed);
              o_deadline_exceeded = add (fun o -> o.R.o_deadline_exceeded);
              o_errors = merged_errors;
              o_stats = stats }
          in
          let phases = 1 + if !no_warm then 0 else 1 in
          let j =
            R.report_json ~seed:!seed ~clients:!clients
              ~requests:(phases * List.length trace)
              outcome ~chaos:(R.proxy_counts proxy) ~cold ~warm
          in
          (match Report.check j with
          | Ok _ -> ()
          | Error msg -> failwith ("load report does not validate: " ^ msg));
          Option.iter
            (fun file ->
              let oc = open_out file in
              output_string oc (Json.to_string ~pretty:true j);
              output_char oc '\n';
              close_out oc)
            json.contents;
          let stalls, partials, dx = R.proxy_counts proxy in
          Printf.printf
            "shackled replay: %d requests over %d clients: %d completed, %d \
             retries, %d shed, %d deadline-exceeded (chaos: %d stalls, %d \
             partial writes, %d disconnects)%s\n"
            (phases * List.length trace)
            !clients outcome.R.o_completed outcome.R.o_retries
            outcome.R.o_shed outcome.R.o_deadline_exceeded stalls partials dx
            (match (cold, warm) with
            | Some c, Some w ->
              Printf.sprintf "; cold %.0f ms / %d solves, warm %.0f ms / %d \
                              solves, %d disk hits"
                c.R.ph_duration_ms c.ph_solves w.R.ph_duration_ms w.ph_solves
                w.ph_disk_hits
            | _ -> "");
          0))

let stop_cmd args =
  let socket = ref Cli.default_socket in
  Cli.run ~prog:"shackled stop" ~specs:[ Cli.socket socket ] args (fun () ->
      match rpc_or_die !socket Server.Proto.Shutdown with
      | Server.Proto.R_bye ->
        print_endline "shackled: bye";
        0
      | _ ->
        prerr_endline "shackled stop: unexpected reply";
        1)

let () =
  exit
    (Cli.dispatch ~prog:"shackled" ~doc:"the shackle compiler as a daemon"
       ~version:"shackled/1"
       [ Cli.cmd "serve" ~doc:"run the daemon (blocks)" serve_cmd;
         Cli.cmd "report" ~doc:"print daemon stats or an offline cache summary"
           report_cmd;
         Cli.cmd "burst" ~doc:"fire a wire-protocol fuzz burst at a live daemon"
           burst_cmd;
         Cli.cmd "replay"
           ~doc:
             "spawn a daemon and drive it with concurrent clients through a \
              chaos proxy (load report, optional SIGKILL mid-load)"
           replay_cmd;
         Cli.cmd "compact"
           ~doc:"rewrite a legality cache: dedupe, drop quarantined spans"
           compact_cmd;
         Cli.cmd "check-json"
           ~doc:"validate a report file against its registry schema"
           check_json_cmd;
         Cli.cmd "stop" ~doc:"ask the daemon to shut down" stop_cmd ]
       Sys.argv)
