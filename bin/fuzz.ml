(* Differential fuzzing CLI: generate random loop nests, cross-check the
   parser, the legality checker and the code generator against brute-force
   ground truth, shrink any failure and print a self-contained repro.

   Exit status 0 when every seed passes, 1 on any failure, 2 on usage
   errors.  Flags come from the shared {!Cli} module, so --seeds, --seed,
   --quick, --json and --domains spell the same as in shacklec and bench. *)

let () =
  let seeds = ref 50 in
  let first_seed = ref 1 in
  let quick = ref false in
  let json = ref None in
  let domains = ref 1 in
  let tune = ref false in
  let specs =
    [ Cli.seeds seeds; Cli.seed first_seed; Cli.quick quick; Cli.json json;
      Cli.domains domains;
      Cli.flag "--tune"
        ~doc:
          "also run the tuner's cached-vs-uncached legality consistency step \
           on every seed"
        tune ]
  in
  exit
    (Cli.run ~prog:"fuzz" ~specs
       (List.tl (Array.to_list Sys.argv))
       (fun () ->
         let report =
           Fuzzing.Driver.run ~tune:!tune ~domains:!domains ~quick:!quick
             ~seeds:!seeds ~first_seed:!first_seed ()
         in
         List.iter
           (fun f -> print_endline (Fuzzing.Driver.failure_to_string f))
           report.Fuzzing.Driver.failures;
         print_endline (Fuzzing.Driver.summary report);
         (match !json with
         | Some file ->
           let oc = open_out file in
           output_string oc
             (Observe.Json.to_string ~pretty:true
                (Fuzzing.Driver.to_json report));
           output_char oc '\n';
           close_out oc
         | None -> ());
         if report.Fuzzing.Driver.failures <> [] then 1 else 0))
