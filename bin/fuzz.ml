(* Differential fuzzing CLI: generate random loop nests, cross-check the
   parser, the legality checker and the code generator against brute-force
   ground truth, shrink any failure and print a self-contained repro.

   Exit status 0 when every seed passes, 1 on any failure, 2 on usage
   errors.  The flag parser is hand rolled, like bench/main.ml, so the
   executable has no dependency beyond the repo's own libraries. *)

let usage () =
  prerr_endline
    "usage: fuzz [--seeds N] [--seed K] [--quick] [--json FILE] [--domains D]\n\
     \n\
     \  --seeds N     number of consecutive seeds to run (default 50)\n\
     \  --seed K      first seed (default 1); each seed is fully deterministic\n\
     \  --quick       smaller programs and fewer specs per seed (CI smoke mode)\n\
     \  --json FILE   write a machine-readable report to FILE\n\
     \  --domains D   worker domains (default 1; result independent of D)";
  exit 2

let () =
  let seeds = ref 50 in
  let first_seed = ref 1 in
  let quick = ref false in
  let json = ref None in
  let domains = ref 1 in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "fuzz: %s expects a positive integer, got %S\n" name v;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
      seeds := int_arg "--seeds" v;
      parse rest
    | "--seed" :: v :: rest ->
      first_seed := int_arg "--seed" v;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: f :: rest ->
      json := Some f;
      parse rest
    | "--domains" :: v :: rest ->
      domains := int_arg "--domains" v;
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ ->
      Printf.eprintf "fuzz: unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let report =
    Fuzzing.Driver.run ~domains:!domains ~quick:!quick ~seeds:!seeds
      ~first_seed:!first_seed ()
  in
  List.iter
    (fun f -> print_endline (Fuzzing.Driver.failure_to_string f))
    report.Fuzzing.Driver.failures;
  print_endline (Fuzzing.Driver.summary report);
  (match !json with
  | Some file ->
    let oc = open_out file in
    output_string oc
      (Observe.Json.to_string ~pretty:true (Fuzzing.Driver.to_json report));
    output_char oc '\n';
    close_out oc
  | None -> ());
  if report.Fuzzing.Driver.failures <> [] then exit 1
