(* Differential fuzzing CLI: generate random loop nests, cross-check the
   parser, the legality checker and the code generator against brute-force
   ground truth, shrink any failure and print a self-contained repro.

   The campaign is supervised: --timeout-ms and --fuel bound each seed's
   solver work, --retries re-runs transient crashes, --inject plants
   deterministic faults (for testing the supervision itself), and
   --checkpoint/--resume make a killed campaign restartable with a
   byte-identical final report.

   Exit status 0 when every failure was injected by the fault plan (an
   injected campaign that fails only where told to is a success), 1 on any
   unexpected failure, 2 on usage errors.  Flags come from the shared
   {!Cli} module, so --seeds, --seed, --quick, --json, --domains,
   --timeout-ms and --fuel spell the same as in shacklec and bench. *)

(* --check-json: one shared implementation (the Report registry), same
   exit discipline as `shacklec tune --check-json` and `bench
   --check-json`: 0 valid, 1 invalid or unreadable. *)
let validate_report file =
  if not (Sys.file_exists file) then begin
    Printf.eprintf "fuzz: %s: no such file\n" file;
    1
  end
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    match Observe.Json.of_string raw with
    | Error msg ->
      Printf.eprintf "fuzz: %s: %s\n" file msg;
      1
    | Ok j -> (
      match Report.check j with
      | Ok tag when String.equal tag Report.fuzz_report ->
        Printf.printf "%s: valid %s\n" file tag;
        0
      | Ok tag ->
        Printf.eprintf "fuzz: %s: schema %S, expected %S\n" file tag
          Report.fuzz_report;
        1
      | Error e ->
        Printf.eprintf "fuzz: %s: schema error: %s\n" file e;
        1)
  end

let () =
  let seeds = ref 50 in
  let first_seed = ref 1 in
  let quick = ref false in
  let json = ref None in
  let domains = ref 1 in
  let tune = ref false in
  let par = ref false in
  let wire = ref false in
  let stage = ref false in
  let bound = ref false in
  let timeout_ms = ref None in
  let fuel = ref None in
  let retries = ref 0 in
  let inject = ref "" in
  let checkpoint = ref None in
  let resume = ref false in
  let check_json = ref None in
  let specs =
    [ Cli.seeds seeds; Cli.seed first_seed; Cli.quick quick; Cli.json json;
      Cli.domains domains;
      Cli.flag "--tune"
        ~doc:
          "also run the tuner's cached-vs-uncached legality consistency step \
           on every seed"
        tune;
      Cli.flag "--par-exec"
        ~doc:
          "also check that parallel block execution over 1/2/3 worker \
           domains is bit-identical to sequential on every seed"
        par;
      Cli.flag "--wire"
        ~doc:
          "also storm an in-process shackled daemon serving each seed's \
           program with mutated protocol frames (total, structured, \
           deterministic)"
        wire;
      Cli.flag "--stage"
        ~doc:
          "also check that per-size specialization of each seed's program \
           (and its first legal blocked variant) is bit-identical to \
           executing the symbolic program"
        stage;
      Cli.flag "--bound"
        ~doc:
          "also check that the analytic communication lower bound never \
           exceeds simulated misses, per cache level, on each seed's \
           program and its first legal blocked variant"
        bound;
      Cli.timeout_ms timeout_ms; Cli.fuel fuel;
      Cli.arg1 "--retries" ~docv:"R"
        ~doc:"retry a crashed seed up to R times with backoff (default 0)"
        (fun v ->
          match int_of_string_opt v with
          | Some r when r >= 0 ->
            retries := r;
            Ok ()
          | _ ->
            Error
              (Printf.sprintf "--retries expects a non-negative integer, got %S" v));
      Cli.arg1 "--inject" ~docv:"PLAN"
        ~doc:
          "fault plan: comma-separated crash:SEED, delay:SEED:MS, \
           starve:SEED:K (supervision testing)"
        (fun v ->
          inject := v;
          Ok ());
      Cli.string_opt "--checkpoint" ~docv:"FILE"
        ~doc:"append each completed seed to FILE (fsynced per batch)" checkpoint;
      Cli.flag "--resume"
        ~doc:"skip seeds already recorded in the --checkpoint file" resume;
      Cli.string_opt "--check-json" ~docv:"FILE"
        ~doc:"validate FILE against the fuzz-report schema and exit"
        check_json ]
  in
  exit
    (Cli.run ~prog:"fuzz" ~specs
       (List.tl (Array.to_list Sys.argv))
       (fun () ->
         match !check_json with
         | Some file -> validate_report file
         | None ->
         match Fuzzing.Fault.parse !inject with
         | Error msg ->
           Printf.eprintf "fuzz: %s (try --help)\n" msg;
           2
         | Ok _ when !resume && !checkpoint = None ->
           prerr_endline "fuzz: --resume needs --checkpoint FILE (try --help)";
           2
         | Ok plan -> begin
           match
             Fuzzing.Driver.run ~tune:!tune ~par:!par ~wire:!wire
               ~stage:!stage ~bound:!bound ~domains:!domains
               ?timeout_ms:!timeout_ms ?fuel:!fuel ~retries:!retries
               ~inject:plan ?checkpoint:!checkpoint ~resume:!resume
               ~quick:!quick ~seeds:!seeds ~first_seed:!first_seed ()
           with
           | exception Fuzzing.Driver.Resume_mismatch msg ->
             Printf.eprintf "fuzz: %s\n" msg;
             2
           | report ->
             List.iter
               (fun f -> print_endline (Fuzzing.Driver.failure_to_string f))
               report.Fuzzing.Driver.failures;
             print_endline (Fuzzing.Driver.summary report);
             (match !json with
             | Some file ->
               let oc = open_out file in
               output_string oc
                 (Observe.Json.to_string ~pretty:true
                    (Fuzzing.Driver.to_json report));
               output_char oc '\n';
               close_out oc
             | None -> ());
             if Fuzzing.Driver.unexpected_failures report <> [] then 1 else 0
         end))
